package core

import (
	"testing"

	"ecstore/internal/proto"
)

// mkState builds a GetStateReply for findConsistentK tests.
func mkState(mode proto.OpMode, recent, old []proto.TID) *proto.GetStateReply {
	st := &proto.GetStateReply{OpMode: mode, BlockValid: mode != proto.Init}
	for i, t := range recent {
		st.RecentList = append(st.RecentList, proto.TIDTime{TID: t, Time: uint64(i + 1)})
	}
	for i, t := range old {
		st.OldList = append(st.OldList, proto.TIDTime{TID: t, Time: uint64(i + 1)})
	}
	return st
}

func wtid(seq uint64, block uint32) proto.TID {
	return proto.TID{Seq: seq, Block: block, Client: 1}
}

func assertSet(t *testing.T, got slotSet, want ...int) {
	t.Helper()
	if got.size() != len(want) {
		t.Fatalf("consistent set = %v, want %v", got.sorted(), want)
	}
	for _, j := range want {
		if !got.has(j) {
			t.Fatalf("consistent set = %v, want %v", got.sorted(), want)
		}
	}
}

func TestFindConsistentAllClean(t *testing.T) {
	// No outstanding writes: every NORM node is consistent.
	states := []*proto.GetStateReply{
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, nil, nil),
	}
	assertSet(t, findConsistentK(states, 2), 0, 1, 2, 3)
}

func TestFindConsistentCompleteWrite(t *testing.T) {
	// A write fully applied everywhere is consistent.
	w := wtid(1, 0)
	states := []*proto.GetStateReply{
		mkState(proto.Norm, []proto.TID{w}, nil),
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, []proto.TID{w}, nil),
		mkState(proto.Norm, []proto.TID{w}, nil),
	}
	assertSet(t, findConsistentK(states, 2), 0, 1, 2, 3)
}

func TestFindConsistentPartialWriteExcludesDataNode(t *testing.T) {
	// The swap landed but no adds: the data node disagrees with every
	// redundant node, so the maximal set is everyone else.
	w := wtid(1, 0)
	states := []*proto.GetStateReply{
		mkState(proto.Norm, []proto.TID{w}, nil),
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, nil, nil),
	}
	assertSet(t, findConsistentK(states, 2), 1, 2, 3)
}

func TestFindConsistentPartialAddsSplitGroups(t *testing.T) {
	// 2-of-6: the write reached the data node and redundant slots 2,3
	// but not 4,5. Candidates: {0?,1,2,3} with the write vs {1,4,5}
	// without it. The group including the write is larger.
	w := wtid(1, 0)
	states := []*proto.GetStateReply{
		mkState(proto.Norm, []proto.TID{w}, nil),
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, []proto.TID{w}, nil),
		mkState(proto.Norm, []proto.TID{w}, nil),
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, nil, nil),
	}
	assertSet(t, findConsistentK(states, 2), 0, 1, 2, 3)
}

func TestFindConsistentOldlistNeutralizes(t *testing.T) {
	// A tid present in some node's oldlist belongs to a completed
	// write: nodes still carrying it in recentlist must not be treated
	// as divergent.
	w := wtid(1, 0)
	states := []*proto.GetStateReply{
		mkState(proto.Norm, []proto.TID{w}, nil), // still in recentlist
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, nil, []proto.TID{w}), // moved to oldlist
		mkState(proto.Norm, []proto.TID{w}, nil),
	}
	assertSet(t, findConsistentK(states, 2), 0, 1, 2, 3)
}

func TestFindConsistentExcludesInitAndNil(t *testing.T) {
	states := []*proto.GetStateReply{
		mkState(proto.Norm, nil, nil),
		mkState(proto.Init, nil, nil),
		nil,
		mkState(proto.Norm, nil, nil),
	}
	assertSet(t, findConsistentK(states, 2), 0, 3)
}

func TestFindConsistentExcludesRecons(t *testing.T) {
	// Condition (1) is opmode == NORM strictly; RECONS nodes are
	// handled by the pickup path, not by find_consistent.
	states := []*proto.GetStateReply{
		mkState(proto.Norm, nil, nil),
		mkState(proto.Recons, nil, nil),
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, nil, nil),
	}
	assertSet(t, findConsistentK(states, 2), 0, 2, 3)
}

func TestFindConsistentTwoConcurrentWrites(t *testing.T) {
	// Writes to slots 0 and 1 both fully applied, interleaved
	// arbitrarily in the lists: all nodes consistent.
	w0 := wtid(1, 0)
	w1 := wtid(2, 1)
	states := []*proto.GetStateReply{
		mkState(proto.Norm, []proto.TID{w0}, nil),
		mkState(proto.Norm, []proto.TID{w1}, nil),
		mkState(proto.Norm, []proto.TID{w0, w1}, nil),
		mkState(proto.Norm, []proto.TID{w1, w0}, nil),
	}
	assertSet(t, findConsistentK(states, 2), 0, 1, 2, 3)
}

func TestFindConsistentMixedCompleteAndPartial(t *testing.T) {
	// w0 complete everywhere; w1 (slot 1) swap-only. Slot 1 must drop.
	w0 := wtid(1, 0)
	w1 := wtid(2, 1)
	states := []*proto.GetStateReply{
		mkState(proto.Norm, []proto.TID{w0}, nil),
		mkState(proto.Norm, []proto.TID{w1}, nil),
		mkState(proto.Norm, []proto.TID{w0}, nil),
		mkState(proto.Norm, []proto.TID{w0}, nil),
	}
	assertSet(t, findConsistentK(states, 2), 0, 2, 3)
}

func TestFindConsistentAllDataFallback(t *testing.T) {
	// Redundant nodes diverge from everything; the all-data candidate
	// must win when it is the largest.
	wA := wtid(1, 0)
	wB := wtid(2, 0)
	states := []*proto.GetStateReply{
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, nil, nil),
		mkState(proto.Norm, []proto.TID{wA}, nil), // saw only wA
		mkState(proto.Norm, []proto.TID{wB}, nil), // saw only wB
	}
	// k=3: all-data = {0,1,2} (size 3); group {3} -> data slots with
	// f(j)=required: slot 0 has f={} but required={wA} -> excluded;
	// slots 1,2 included -> size 3. Tie resolves to either; both are
	// maximal with size 3. Accept any set of size 3 that is internally
	// consistent.
	got := findConsistentK(states, 3)
	if got.size() != 3 {
		t.Fatalf("consistent set = %v, want size 3", got.sorted())
	}
}

func TestSlotSetSorted(t *testing.T) {
	s := newSlotSet(5, 1, 3, 2)
	got := s.sorted()
	want := []int{1, 2, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", got, want)
		}
	}
	s.remove(3)
	if s.has(3) || s.size() != 3 {
		t.Fatal("remove failed")
	}
}

func TestTIDTimesEqual(t *testing.T) {
	a := []proto.TIDTime{{TID: wtid(1, 0), Time: 1}}
	b := []proto.TIDTime{{TID: wtid(1, 0), Time: 1}}
	if !tidTimesEqual(a, b) {
		t.Fatal("equal lists reported unequal")
	}
	if tidTimesEqual(a, b[:0]) {
		t.Fatal("different lengths reported equal")
	}
	b[0].Time = 2
	if tidTimesEqual(a, b) {
		t.Fatal("different times reported equal")
	}
}

func TestSignatureKeyCanonical(t *testing.T) {
	s1 := tidSet{wtid(1, 0): {}, wtid(2, 1): {}}
	s2 := tidSet{wtid(2, 1): {}, wtid(1, 0): {}}
	if signatureKey(s1) != signatureKey(s2) {
		t.Fatal("signature depends on insertion order")
	}
	s3 := tidSet{wtid(3, 0): {}}
	if signatureKey(s1) == signatureKey(s3) {
		t.Fatal("different sets share a signature")
	}
	if signatureKey(tidSet{}) != "" {
		t.Fatal("empty set signature must be empty")
	}
}

func TestConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{ID: 1, Code: testCode(t), Resolver: stubResolver{}, BlockSize: 64}
	}
	if _, err := NewClient(base()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base()
	bad.ID = 0
	if _, err := NewClient(bad); err == nil {
		t.Error("zero ID accepted")
	}
	bad = base()
	bad.Code = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("nil code accepted")
	}
	bad = base()
	bad.Resolver = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("nil resolver accepted")
	}
	bad = base()
	bad.BlockSize = 0
	if _, err := NewClient(bad); err == nil {
		t.Error("zero block size accepted")
	}
	bad = base()
	bad.TP = -1
	if _, err := NewClient(bad); err == nil {
		t.Error("negative TP accepted")
	}
}

func TestClientAccessorsAndBounds(t *testing.T) {
	cl, err := NewClient(Config{ID: 7, Code: testCode(t), Resolver: stubResolver{}, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if cl.ID() != 7 {
		t.Fatalf("ID = %d", cl.ID())
	}
	ctx := testCtx(t)
	if _, err := cl.ReadBlock(ctx, 0, -1); err == nil {
		t.Error("negative slot accepted")
	}
	if _, err := cl.ReadBlock(ctx, 0, 2); err == nil {
		t.Error("slot >= k accepted")
	}
	if err := cl.WriteBlock(ctx, 0, 0, make([]byte, 3)); err == nil {
		t.Error("wrong-size value accepted")
	}
}

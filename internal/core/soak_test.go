package core_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"ecstore/internal/cluster"
	"ecstore/internal/proto"
)

// TestSoakEverythingTogether is the capstone integration test: three
// clients mix single-block writes, batched stripe writes, reads, GC
// passes, and scrubs across several stripes while storage nodes crash
// (within budget). At the end, a monitor pass restores everything and
// every block must hold the last value its per-block history says it
// should.
func TestSoakEverythingTogether(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		stripes = 4
		k, n    = 2, 5 // p=3: survives the 2 crashes injected below
		rounds  = 30
	)
	c := testCluster(t, cluster.Options{K: k, N: n, Clients: 3})
	ctx := ctxT(t)

	// last[stripe][slot] tracks the most recent completed write per
	// block, guarded by per-block mutexes so the expectation is exact
	// (writers to the same block serialize in the test harness; the
	// protocol still sees plenty of cross-block concurrency).
	var mu [stripes][k]sync.Mutex
	var last [stripes][k]uint64

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			cl := c.Clients[w]
			for r := 0; r < rounds; r++ {
				s := uint64(rng.Intn(stripes))
				switch rng.Intn(5) {
				case 0: // batched stripe write
					vals := make([][]byte, k)
					xs := make([]uint64, k)
					for i := range vals {
						xs[i] = uint64(w*100000 + r*100 + i + 1)
						vals[i] = val(xs[i])
					}
					for i := 0; i < k; i++ {
						mu[s][i].Lock()
					}
					if err := cl.WriteStripe(ctx, s, vals); err != nil {
						for i := k - 1; i >= 0; i-- {
							mu[s][i].Unlock()
						}
						errs <- err
						return
					}
					for i := 0; i < k; i++ {
						last[s][i] = xs[i]
					}
					for i := k - 1; i >= 0; i-- {
						mu[s][i].Unlock()
					}
				case 1: // read and validate against the tracked value
					slot := rng.Intn(k)
					mu[s][slot].Lock()
					want := last[s][slot]
					got, err := cl.ReadBlock(ctx, s, slot)
					if err != nil {
						mu[s][slot].Unlock()
						errs <- err
						return
					}
					x := binary.BigEndian.Uint64(got)
					mu[s][slot].Unlock()
					if x != want {
						t.Errorf("stripe %d slot %d: read %d, want %d", s, slot, x, want)
					}
				case 2: // garbage collection
					if _, err := cl.CollectGarbage(ctx); err != nil {
						errs <- err
						return
					}
				case 3: // scrub (busy results are fine)
					if _, err := cl.ScrubStripe(ctx, s); err != nil {
						errs <- err
						return
					}
				default: // single-block write
					slot := rng.Intn(k)
					x := uint64(w*100000 + r*100 + 50)
					mu[s][slot].Lock()
					if err := cl.WriteBlock(ctx, s, slot, val(x)); err != nil {
						mu[s][slot].Unlock()
						errs <- err
						return
					}
					last[s][slot] = x
					mu[s][slot].Unlock()
				}
			}
		}(w)
	}
	// Two storage crashes while the storm runs (p=3 budget).
	crashDone := make(chan struct{})
	go func() {
		defer close(crashDone)
		c.CrashNode(1)
		c.CrashNode(3)
	}()
	wg.Wait()
	<-crashDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Restore full redundancy and verify every block and stripe.
	for s := uint64(0); s < stripes; s++ {
		if _, err := c.Clients[0].MonitorStripes(ctx, []uint64{s}, 0); err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < k; slot++ {
			got, err := c.Clients[1].ReadBlock(ctx, s, slot)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, val(last[s][slot])) {
				t.Fatalf("stripe %d slot %d: final value %d, want %d",
					s, slot, binary.BigEndian.Uint64(got), last[s][slot])
			}
		}
		mustVerify(t, c, s)
	}
}

// TestGCPhaseWithCrashedNode: a node crash mid-GC must not wedge the
// pass — the crashed node's lists died with it, so the pass treats it
// as collected.
func TestGCPhaseWithCrashedNode(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for x := uint64(1); x <= 4; x++ {
		if err := cl.WriteBlock(ctx, 0, 0, val(x)); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashNodeForStripeSlot(0, 2)
	// The first pass must not error: the dead node's lists died with
	// it. But its INIT replacement rejects collection (UNAVAIL), so the
	// pending lists are RETAINED for retry — collecting before the
	// stripe is healthy would be wrong.
	if _, err := cl.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	if cl.PendingGC() == 0 {
		t.Fatal("GC collected everything while the stripe had an INIT slot")
	}
	// Reads don't touch the dead parity slot, so access-driven healing
	// never fires; the monitoring pass (Section 3.10) is what heals
	// here. Recovery's finalize clears the server-side lists, so the
	// retried client-side entries become no-ops.
	if _, err := cl.MonitorStripes(ctx, []uint64{0}, 1<<40); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(4)) {
		t.Fatal("data lost")
	}
	for pass := 0; pass < 2; pass++ {
		if _, err := cl.CollectGarbage(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if cl.PendingGC() != 0 {
		t.Fatalf("pending GC = %d after healing and two passes", cl.PendingGC())
	}
}

// TestProbeAfterBatchWrite: monitoring sees batch-written tids like
// any others (they age and trigger recovery if never collected).
func TestProbeAfterBatchWrite(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteStripe(ctx, 0, stripeValues(2, 1)); err != nil {
		t.Fatal(err)
	}
	node, _ := c.Dir.Node(0, 2)
	rep, err := node.Probe(ctx, &proto.ProbeReq{Stripe: 0, Slot: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasRecent || rep.RecentCount != 2 {
		t.Fatalf("probe after batch = %+v, want 2 recent tids", rep)
	}
	// Monitor with a huge age threshold: healthy, no recovery.
	report, err := cl.MonitorStripes(ctx, []uint64{0}, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Recovered) != 0 {
		t.Fatal("healthy batch-written stripe was recovered")
	}
}

package core_test

import (
	"bytes"
	"testing"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/proto"
	"ecstore/internal/transport"
)

func multiWrites(k, stripes int, base uint64) []core.StripeWrite {
	out := make([]core.StripeWrite, stripes)
	for s := range out {
		out[s] = core.StripeWrite{
			Stripe: uint64(s),
			Values: stripeValues(k, base+uint64(100*s)),
		}
	}
	return out
}

func TestWriteStripesRoundTrip(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 3, N: 5})
	ctx := ctxT(t)
	cl := c.Clients[0]
	writes := multiWrites(3, 8, 1000)
	errs, stats := cl.WriteStripes(ctx, writes)
	for s, err := range errs {
		if err != nil {
			t.Fatalf("stripe %d: %v", s, err)
		}
	}
	if stats.BatchCalls == 0 {
		t.Fatal("no batch calls recorded")
	}
	for s, w := range writes {
		for i, want := range w.Values {
			got, err := cl.ReadBlock(ctx, w.Stripe, i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("stripe %d slot %d mismatch", s, i)
			}
		}
		mustVerify(t, c, w.Stripe)
	}
	if got := cl.Stats().StripeWrites.Load(); got != 8 {
		t.Fatalf("StripeWrites = %d, want 8", got)
	}
}

// TestWriteStripesCoalesces is the tentpole's wire-level claim: the
// redundant-node deltas of co-scheduled stripes destined for the same
// node collapse into combined RPCs, so the physical batch-add message
// count drops below the logical one.
func TestWriteStripesCoalesces(t *testing.T) {
	ctr := &transport.Counters{}
	c := testCluster(t, cluster.Options{K: 3, N: 5, WrapNode: func(phys int, n proto.StorageNode) proto.StorageNode {
		return transport.NewCounting(n, ctr)
	}})
	ctx := ctxT(t)
	cl := c.Clients[0]
	const stripes = 10
	errs, stats := cl.WriteStripes(ctx, multiWrites(3, stripes, 1000))
	for s, err := range errs {
		if err != nil {
			t.Fatalf("stripe %d: %v", s, err)
		}
	}
	// 10 stripes x 2 redundant slots = 20 logical batch-adds over 5
	// nodes: coalescing must need strictly fewer wire calls.
	if want := uint64(stripes * 2); stats.BatchCalls != want {
		t.Fatalf("BatchCalls = %d, want %d", stats.BatchCalls, want)
	}
	if stats.BatchRPCs >= stats.BatchCalls {
		t.Fatalf("BatchRPCs = %d, not coalesced below %d calls", stats.BatchRPCs, stats.BatchCalls)
	}
	wire := ctr.BatchAdd.Calls.Load() + ctr.BatchAddMulti.Calls.Load()
	if wire != stats.BatchRPCs {
		t.Fatalf("wire calls = %d, stats claim %d", wire, stats.BatchRPCs)
	}
	if ctr.BatchAddMulti.Calls.Load() == 0 {
		t.Fatal("no combined batch-add RPC was ever issued")
	}
	for s := 0; s < stripes; s++ {
		mustVerify(t, c, uint64(s))
	}
}

// TestWriteStripesSingleUsesPlainRPCs pins the window-1 equivalence at
// the wire: a 1-element batch must be RPC-identical to the old
// sequential WriteStripe path — no multi calls at all.
func TestWriteStripesSingleUsesPlainRPCs(t *testing.T) {
	ctr := &transport.Counters{}
	c := testCluster(t, cluster.Options{K: 3, N: 5, WrapNode: func(phys int, n proto.StorageNode) proto.StorageNode {
		return transport.NewCounting(n, ctr)
	}})
	ctx := ctxT(t)
	if err := c.Clients[0].WriteStripe(ctx, 0, stripeValues(3, 50)); err != nil {
		t.Fatal(err)
	}
	if got := ctr.BatchAddMulti.Calls.Load(); got != 0 {
		t.Fatalf("single-stripe write used %d multi RPCs, want 0", got)
	}
	if got := ctr.BatchAdd.Calls.Load(); got != 2 {
		t.Fatalf("single-stripe write used %d batch-adds, want 2", got)
	}
	mustVerify(t, c, 0)
}

// TestWriteStripesValidationPerStripe: one malformed stripe in a batch
// fails only its own slot; the rest land.
func TestWriteStripesValidationPerStripe(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	writes := multiWrites(2, 3, 500)
	writes[1].Values = writes[1].Values[:1] // wrong block count
	errs, _ := cl.WriteStripes(ctx, writes)
	if errs[1] == nil {
		t.Fatal("malformed stripe accepted")
	}
	for _, s := range []int{0, 2} {
		if errs[s] != nil {
			t.Fatalf("valid stripe %d failed: %v", s, errs[s])
		}
		got, err := cl.ReadBlock(ctx, writes[s].Stripe, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, writes[s].Values[0]) {
			t.Fatalf("stripe %d lost", s)
		}
	}
}

// TestWriteStripesSurvivesRedundantCrash: a redundant-node crash
// mid-batch must not lose any stripe — recovery and retry complete
// every write.
func TestWriteStripesSurvivesRedundantCrash(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if errs, _ := cl.WriteStripes(ctx, multiWrites(2, 6, 100)); errs[0] != nil {
		t.Fatal(errs[0])
	}
	c.CrashNodeForStripeSlot(0, 3) // a redundant node of stripe 0
	writes := multiWrites(2, 6, 7000)
	errs, _ := cl.WriteStripes(ctx, writes)
	for s, err := range errs {
		if err != nil {
			t.Fatalf("stripe %d after crash: %v", s, err)
		}
	}
	for _, w := range writes {
		for i, want := range w.Values {
			got, err := cl.ReadBlock(ctx, w.Stripe, i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("stripe %d slot %d lost across crash", w.Stripe, i)
			}
		}
		mustVerify(t, c, w.Stripe)
	}
}

package core_test

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecstore/internal/cluster"
	"ecstore/internal/proto"
	"ecstore/internal/regcheck"
	"ecstore/internal/transport"
)

// chaosRegister is one logical block under test: a stripe/slot pair
// with a dedicated writer and its consistency history.
type chaosRegister struct {
	stripe uint64
	slot   int

	hist *regcheck.History

	mu            sync.Mutex
	written       map[uint64]bool // every value ever attempted
	lastCompleted uint64          // highest value whose write returned nil
}

func (r *chaosRegister) noteAttempt(x uint64) {
	r.mu.Lock()
	r.written[x] = true
	r.mu.Unlock()
}

func (r *chaosRegister) noteCompleted(x uint64) {
	r.mu.Lock()
	if x > r.lastCompleted {
		r.lastCompleted = x
	}
	r.mu.Unlock()
}

// TestChaosSoakRegularRegister is the soak harness demanded by the
// robustness issue: several clients read and write two registers while
// a seeded random schedule of transient crashes, partitions, and gray
// slowdowns plays out against the storage nodes. Afterwards every
// recorded history must satisfy multi-writer regular-register
// semantics (regcheck), no completed write may be lost, and both
// stripes must verify against the erasure code.
//
// The cluster runs with NoReplacements and transport.Faulty transient
// faults: nodes keep their state across crash windows, so the register
// contents survive and the zero-lost-writes assertion is meaningful.
func TestChaosSoakRegularRegister(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run("seed", func(t *testing.T) {
			chaosSoak(t, seed)
		})
	}
}

func chaosSoak(t *testing.T, seed int64) {
	const (
		n             = 5
		soak          = 400 * time.Millisecond
		maxConcurrent = 2 // p=3 budget: >=3 survivors >= k at all times
	)
	var (
		mu       sync.Mutex
		wrappers = make([]*transport.Faulty, n)
	)
	c := testCluster(t, cluster.Options{
		K: 2, N: n, Clients: 4, NoReplacements: true,
		WrapNode: func(phys int, node proto.StorageNode) proto.StorageNode {
			w := transport.NewFaulty(node, transport.FaultConfig{
				Seed:      seed*100 + int64(phys),
				ErrorRate: 0.01,
				Jitter:    200 * time.Microsecond,
			})
			mu.Lock()
			wrappers[phys] = w
			mu.Unlock()
			return w
		},
	})
	ctx := ctxT(t)

	regs := []*chaosRegister{
		{stripe: 0, slot: 0, hist: regcheck.New(), written: map[uint64]bool{}},
		{stripe: 1, slot: 1, hist: regcheck.New(), written: map[uint64]bool{}},
	}

	// Warm both registers so the scenario starts from real content.
	var seq atomic.Uint64
	for i, r := range regs {
		x := seq.Add(1)
		r.noteAttempt(x)
		tok := r.hist.BeginWrite(x)
		if err := c.Clients[i].WriteBlock(ctx, r.stripe, r.slot, val(x)); err != nil {
			t.Fatalf("warmup write register %d: %v", i, err)
		}
		r.hist.EndWrite(tok)
		r.noteCompleted(x)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var readErrs, writeErrs atomic.Uint64

	// One dedicated writer per register.
	for i, r := range regs {
		wg.Add(1)
		go func(cl int, r *chaosRegister) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				x := seq.Add(1)
				r.noteAttempt(x)
				tok := r.hist.BeginWrite(x)
				if err := c.Clients[cl].WriteBlock(ctx, r.stripe, r.slot, val(x)); err != nil {
					// Leave the write open: like a crashed writer, its
					// value stays legal for concurrent-or-later reads.
					writeErrs.Add(1)
					continue
				}
				r.hist.EndWrite(tok)
				r.noteCompleted(x)
				time.Sleep(200 * time.Microsecond)
			}
		}(i, r)
	}

	// Two readers, each sweeping both registers with its own client.
	for i := 2; i < 4; i++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, r := range regs {
					tok := r.hist.BeginRead()
					b, err := c.Clients[cl].ReadBlock(ctx, r.stripe, r.slot)
					if err != nil {
						readErrs.Add(1)
						continue
					}
					r.hist.EndRead(tok, binary.BigEndian.Uint64(b))
				}
				time.Sleep(100 * time.Microsecond)
			}
		}(i)
	}

	// Replay the seeded fault schedule; Run returns with every node
	// healed (the scenario ends in heal events).
	sc := transport.RandomScenario(seed, n, soak, maxConcurrent)
	if err := sc.Run(ctx, wrappers); err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	close(stop)
	wg.Wait()

	for phys, w := range wrappers {
		if w.Down() || w.Partitioned() || w.Gray() {
			t.Fatalf("node %d left faulted after scenario", phys)
		}
	}

	// Quiesce: recover both stripes (completing any partial write), then
	// take a final read per register — recorded in the history so Check
	// validates it like any other.
	for _, r := range regs {
		if err := c.Clients[0].Recover(ctx, r.stripe); err != nil {
			t.Fatalf("post-soak recovery of stripe %d: %v", r.stripe, err)
		}
		tok := r.hist.BeginRead()
		b, err := c.Clients[0].ReadBlock(ctx, r.stripe, r.slot)
		if err != nil {
			t.Fatalf("final read of stripe %d: %v", r.stripe, err)
		}
		final := binary.BigEndian.Uint64(b)
		r.hist.EndRead(tok, final)

		r.mu.Lock()
		lastCompleted, attempted := r.lastCompleted, r.written[final]
		r.mu.Unlock()
		if !attempted {
			t.Fatalf("stripe %d: final value %d was never written to this register", r.stripe, final)
		}
		if final < lastCompleted {
			t.Fatalf("stripe %d: completed write %d lost (final value %d)", r.stripe, lastCompleted, final)
		}
		if err := r.hist.Check(); err != nil {
			t.Fatalf("stripe %d: %v", r.stripe, err)
		}
		mustVerify(t, c, r.stripe)
	}

	var injected, refused uint64
	for _, w := range wrappers {
		s := w.Stats()
		injected += s.InjectedErrors.Load()
		refused += s.RefusedCrash.Load() + s.RefusedPartition.Load()
	}
	var degraded, unavailable uint64
	for _, cl := range c.Clients {
		degraded += cl.Stats().DegradedReads.Load()
		unavailable += cl.Stats().Unavailable.Load()
	}
	for _, r := range regs {
		w, rd := r.hist.Counts()
		t.Logf("seed %d stripe %d: %d writes, %d reads recorded", seed, r.stripe, w, rd)
	}
	t.Logf("seed %d: injected=%d refused=%d degraded_reads=%d unavailable=%d read_errs=%d write_errs=%d",
		seed, injected, refused, degraded, unavailable, readErrs.Load(), writeErrs.Load())
}

package core_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
)

// fastRetry is a tight retry policy for tests that exercise budget
// exhaustion: small delays so an unavailable verdict arrives quickly.
func fastRetry() core.RetryPolicy {
	return core.RetryPolicy{
		BaseDelay:   50 * time.Microsecond,
		MaxDelay:    500 * time.Microsecond,
		MaxAttempts: 12,
	}
}

// TestDegradedReadNoReplacement is the headline robustness scenario:
// the data node is dead and never replaced, and ReadBlock must still
// return the correct block by decoding from k surviving slots.
func TestDegradedReadNoReplacement(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4, NoReplacements: true})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(7)); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteBlock(ctx, 0, 1, val(8)); err != nil {
		t.Fatal(err)
	}
	c.CrashNodeForStripeSlot(0, 0)

	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(got, val(7)) {
		t.Fatal("degraded read returned the wrong block")
	}
	if cl.Stats().DegradedReads.Load() == 0 {
		t.Fatal("degraded-read counter did not move")
	}

	// The sibling slot's data node is alive: its read must stay on the
	// normal 1-RTT path.
	before := cl.Stats().DegradedReads.Load()
	got, err = cl.ReadBlock(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(8)) {
		t.Fatal("healthy slot returned the wrong block")
	}
	if cl.Stats().DegradedReads.Load() != before {
		t.Fatal("healthy read took the degraded path")
	}
}

// TestDegradedReadUnwrittenSlot checks the fallback also serves slots
// that were never written (zero blocks are part of the code's initial
// state, not fabricated data).
func TestDegradedReadUnwrittenSlot(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4, NoReplacements: true})
	ctx := ctxT(t)
	cl := c.Clients[0]
	// Write only slot 1; slot 0 stays at its initial zero block.
	if err := cl.WriteBlock(ctx, 0, 1, val(3)); err != nil {
		t.Fatal(err)
	}
	c.CrashNodeForStripeSlot(0, 0)
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatalf("degraded read of unwritten slot: %v", err)
	}
	if !bytes.Equal(got, make([]byte, blockSize)) {
		t.Fatal("unwritten slot must decode to the zero block")
	}
}

// TestReadUnavailableBeyondBudget kills more nodes than the code can
// tolerate: with fewer than k survivors even the degraded path cannot
// reconstruct, and the bounded retry budget must surface a typed
// ErrUnavailable instead of spinning until ctx expiry.
func TestReadUnavailableBeyondBudget(t *testing.T) {
	c := testCluster(t, cluster.Options{
		K: 2, N: 4, NoReplacements: true, Retry: fastRetry(),
	})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	for phys := 0; phys < 3; phys++ {
		c.CrashNode(phys)
	}
	_, err := cl.ReadBlock(ctx, 0, 0)
	if !errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	var ue *core.UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %T, want *core.UnavailableError", err)
	}
	if ue.Attempts == 0 || len(ue.History) == 0 {
		t.Fatalf("unavailable error lacks attempt history: %+v", ue)
	}
	if cl.Stats().Unavailable.Load() == 0 {
		t.Fatal("unavailable counter did not move")
	}
}

// TestWriteUnavailableBeyondBudget: a dead, unreplaced data node makes
// the swap impossible; the write must exhaust its budget and surface
// ErrUnavailable rather than retrying forever.
func TestWriteUnavailableBeyondBudget(t *testing.T) {
	c := testCluster(t, cluster.Options{
		K: 2, N: 4, NoReplacements: true, Retry: fastRetry(),
	})
	ctx := ctxT(t)
	cl := c.Clients[0]
	c.CrashNodeForStripeSlot(0, 0)
	err := cl.WriteBlock(ctx, 0, 0, val(5))
	if !errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

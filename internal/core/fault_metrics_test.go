package core_test

import (
	"errors"
	"testing"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
)

// obsCluster builds a test cluster with a shared metrics registry and
// returns both.
func obsCluster(t *testing.T, opts cluster.Options) (*cluster.Cluster, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	opts.Obs = reg
	return testCluster(t, opts), reg
}

// snapInt reads a func-mirrored counter out of a snapshot.
func snapInt(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	v, ok := reg.Snapshot()[name]
	if !ok {
		t.Fatalf("metric %q missing from snapshot", name)
	}
	n, ok := v.(int64)
	if !ok {
		t.Fatalf("metric %q has type %T, want int64", name, v)
	}
	return n
}

// TestMetricsWriteRetryOnNodeCrash crashes a redundant node under a
// write: the first add fails, the directory reroutes to a replacement,
// and the retry counters must record the detour.
func TestMetricsWriteRetryOnNodeCrash(t *testing.T) {
	c, reg := obsCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	before := reg.Counter("core.add_retries").Value()
	c.CrashNodeForStripeSlot(0, 3)
	if err := cl.WriteBlock(ctx, 0, 0, val(2)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("core.add_retries").Value(); got <= before {
		t.Fatalf("core.add_retries = %d, want > %d after a redundant-node crash mid-write", got, before)
	}
	if reg.Counter("core.add_calls").Value() == 0 {
		t.Fatal("core.add_calls never incremented")
	}
	if reg.Counter("core.swap_calls").Value() == 0 {
		t.Fatal("core.swap_calls never incremented")
	}
	lat := reg.Histogram("core.write_latency")
	if lat.Count() < 2 {
		t.Fatalf("core.write_latency count = %d, want >= 2", lat.Count())
	}
	mustVerify(t, c, 0)
}

// TestMetricsRecoveryLockConflict holds foreign L1 locks on every slot
// so Recover hits the busy path, then releases them so a second
// attempt succeeds: the busy counter and the three per-phase recovery
// histograms must both reflect what happened.
func TestMetricsRecoveryLockConflict(t *testing.T) {
	c, reg := obsCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < 2; i++ {
		if err := cl.WriteBlock(ctx, 0, i, val(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// A foreign, live client holds recovery locks on the whole stripe.
	const holder = proto.ClientID(99)
	for j := 0; j < 4; j++ {
		node, _ := c.Dir.Node(0, j)
		rep, err := node.TryLock(ctx, &proto.TryLockReq{Stripe: 0, Slot: int32(j), Mode: proto.L1, Caller: holder})
		if err != nil || !rep.OK {
			t.Fatalf("foreign lock on slot %d: %v %+v", j, err, rep)
		}
	}
	if err := cl.Recover(ctx, 0); !errors.Is(err, core.ErrRecoveryBusy) {
		t.Fatalf("Recover with foreign locks = %v, want ErrRecoveryBusy", err)
	}
	if got := snapInt(t, reg, "core.recovery_busy"); got < 1 {
		t.Fatalf("core.recovery_busy = %d, want >= 1", got)
	}

	// Expire the foreign client's locks; the retried recovery must run
	// all three phases and time each one.
	c.FailClient(holder)
	if err := cl.Recover(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if got := snapInt(t, reg, "core.recoveries"); got < 1 {
		t.Fatalf("core.recoveries = %d, want >= 1", got)
	}
	for _, name := range []string{"core.recovery_phase1", "core.recovery_phase2", "core.recovery_phase3"} {
		if n := reg.Histogram(name).Count(); n < 1 {
			t.Fatalf("%s count = %d, want >= 1 after a completed recovery", name, n)
		}
	}
	mustVerify(t, c, 0)
}

// TestMetricsGCRounds runs the two-phase garbage collector twice over
// written stripes: round and reclaimed-entry counters must advance.
func TestMetricsGCRounds(t *testing.T) {
	c, reg := obsCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < 8; i++ {
		if err := cl.WriteBlock(ctx, uint64(i%2), i%2, val(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Pass 1 ages recent tids; pass 2 discards them.
	for pass := 0; pass < 2; pass++ {
		if _, err := cl.CollectGarbage(ctx); err != nil {
			t.Fatalf("gc pass %d: %v", pass, err)
		}
	}
	if got := snapInt(t, reg, "core.gc_rounds"); got < 2 {
		t.Fatalf("core.gc_rounds = %d, want >= 2", got)
	}
	if got := reg.Counter("core.gc_reclaimed").Value(); got == 0 {
		t.Fatal("core.gc_reclaimed = 0, want > 0 after two full GC passes")
	}
	mustVerify(t, c, 0)
	mustVerify(t, c, 1)
}

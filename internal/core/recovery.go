package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
)

// maxRecoveryTime bounds one forked recovery attempt; it exists only
// as a backstop against a wedged transport.
const maxRecoveryTime = 60 * time.Second

// Recover runs the three-phase recovery procedure (Fig. 6) for a
// stripe. Like the paper's start_recovery, the procedure is *forked*:
// it runs detached from the triggering operation's context, because a
// recovery aborted halfway leaves locked, half-reconstructed state
// that some other client must then clean up — strictly worse than
// finishing. The caller waits for the fork (or its own cancellation)
// and gets the recovery's result. If this client is already recovering
// the stripe, the call joins that attempt. It returns ErrRecoveryBusy
// when a different client holds the recovery locks; callers then retry
// their operation after a pause.
func (c *Client) Recover(ctx context.Context, stripeID uint64) error {
	t := c.ensureRecovery(ctx, stripeID)
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.done:
		return t.err
	}
}

// StartRecovery forks the recovery procedure without waiting for its
// result — the literal start_recovery() of Figs. 4-6. Writers MUST use
// this form: recovery's phase 2 waits for outstanding writes to finish
// their adds under the L0 lock, so a writer that blocked waiting for
// recovery would deadlock against it.
func (c *Client) StartRecovery(ctx context.Context, stripeID uint64) {
	c.ensureRecovery(ctx, stripeID)
}

// ensureRecovery returns the in-flight recovery ticket for a stripe,
// forking a new attempt if none is running.
func (c *Client) ensureRecovery(ctx context.Context, stripeID uint64) *recoveryTicket {
	c.recmu.Lock()
	defer c.recmu.Unlock()
	if t, ok := c.recovering[stripeID]; ok {
		return t
	}
	t := &recoveryTicket{done: make(chan struct{})}
	c.recovering[stripeID] = t
	go func() {
		rctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), maxRecoveryTime)
		defer cancel()
		t.err = c.recoverStripe(rctx, stripeID, nil)
		c.recmu.Lock()
		delete(c.recovering, stripeID)
		c.recmu.Unlock()
		close(t.done)
	}()
	return t
}

// recoverStripe is one recovery attempt. A non-empty exclude set
// forces the named slots OUT of the consistent set so phase 3
// recomputes them — the scrub path uses it to rebuild blocks it has
// localized as corrupted (bit rot sits outside the paper's fail-stop
// model, but the same reconstruction machinery repairs it).
func (c *Client) recoverStripe(ctx context.Context, stripeID uint64, exclude slotSet) error {
	n := c.cfg.Code.N()
	k := c.cfg.Code.K()

	// --- Phase 1: lock all blocks, in slot order to avoid deadlock ---
	type held struct {
		slot    int
		oldMode proto.LockMode
	}
	var locks []held
	release := func(toExpired bool) {
		// Best-effort lock release. On a clean abort we restore the
		// previous modes; after partial phase-3 writes we expire the
		// locks instead, so the next client to stumble on them re-runs
		// recovery rather than trusting half-recovered state.
		for _, h := range locks {
			mode := h.oldMode
			if toExpired {
				mode = proto.Expired
			}
			if node, err := c.cfg.Resolver.Node(stripeID, h.slot); err == nil {
				_, _ = node.SetLock(context.WithoutCancel(ctx), &proto.SetLockReq{
					Stripe: stripeID, Slot: int32(h.slot), Mode: mode, Caller: c.cfg.ID,
				})
			}
		}
	}

	sp := obs.StartSpan(c.obs.recPhase1)
	for j := 0; j < n; j++ {
		rep, err := c.tryLockSlot(ctx, stripeID, j)
		if err != nil {
			release(false)
			return err
		}
		if !rep.OK {
			// Somebody else locked: back out (Fig. 6 lines 4-6).
			release(false)
			c.stats.RecoveryBusy.Add(1)
			return ErrRecoveryBusy
		}
		locks = append(locks, held{slot: j, oldMode: rep.OldMode})
	}
	c.stats.Recoveries.Add(1)
	sp = sp.Next(c.obs.recPhase2)

	// --- Phase 2: running solo; read state from all storage nodes ---
	// With an aggregator configured we try the bandwidth-frugal path:
	// get_state skips block content, consistent slots later keep their
	// blocks in place, and lost blocks arrive as aggregated partial
	// sums. Any failure along that path falls back to whole blocks.
	frugal := c.cfg.Aggregate != nil
	states := c.getStatesOpt(ctx, stripeID, allSlots(n), frugal)

	var cset slotSet
	pickup := -1
	for j, st := range states {
		if st != nil && st.OpMode == proto.Recons {
			pickup = j
			break
		}
	}
	if pickup >= 0 {
		// Another client crashed during recovery after writing
		// RECONS state: finish exactly what it started, using its
		// saved consistent set minus nodes that died since.
		c.stats.RecoveryPickups.Add(1)
		cset = newSlotSet()
		for _, j := range states[pickup].ReconsSet {
			if st := states[int(j)]; st != nil && st.OpMode != proto.Init && st.BlockValid {
				cset.add(int(j))
			}
		}
	} else {
		var err error
		cset, err = c.waitForConsistentSet(ctx, stripeID, states)
		if err != nil {
			release(true)
			return err
		}
	}
	for j := range exclude {
		cset.remove(j)
	}
	if cset.size() < k {
		release(true)
		return fmt.Errorf("%w: stripe %d has %d consistent blocks, need %d", ErrUnrecoverable, stripeID, cset.size(), k)
	}

	// --- Phase 3: decode, write back, finalize ---
	sp = sp.Next(c.obs.recPhase3)
	csetSorted := cset.sorted()
	cset32 := make([]int32, 0, cset.size())
	for _, j := range csetSorted {
		cset32 = append(cset32, int32(j))
	}

	var epochs []uint64
	wroteBack := false
	if frugal {
		var ferr error
		epochs, ferr = c.reconstructFrugal(ctx, stripeID, cset, csetSorted, cset32)
		if ferr == nil {
			wroteBack = true
			c.stats.FrugalRecoveries.Add(1)
		} else {
			// Fall back to the whole-block path. The NoBlock get_state
			// sweep left no content behind, so refetch the consistent
			// slots with blocks; everything stays locked, so content
			// cannot have moved. In-place reconstructs that already
			// landed merely set RECONS state the naive write-back
			// overwrites with identical content.
			c.stats.FrugalFallbacks.Add(1)
			fresh := c.getStates(ctx, stripeID, csetSorted)
			for _, j := range csetSorted {
				states[j] = fresh[j]
			}
		}
	}
	if !wroteBack {
		stripeBlocks := make([][]byte, n)
		for j := range cset {
			if states[j] == nil || !states[j].BlockValid {
				release(true)
				return fmt.Errorf("%w: consistent slot %d has no readable block", ErrUnrecoverable, j)
			}
			stripeBlocks[j] = states[j].Block
		}
		if err := c.cfg.Code.Reconstruct(stripeBlocks); err != nil {
			release(true)
			return fmt.Errorf("core: decode during recovery of stripe %d: %w", stripeID, err)
		}
		epochs = make([]uint64, n)
		if err := c.forEachSlot(ctx, n, func(j int) error {
			rep, err := c.callReconstruct(ctx, stripeID, j, cset32, stripeBlocks[j])
			if err != nil {
				return err
			}
			epochs[j] = rep.Epoch
			return nil
		}); err != nil {
			release(true)
			return err
		}
	}
	maxEpoch := uint64(0)
	for _, e := range epochs {
		maxEpoch = max(maxEpoch, e)
	}
	if err := c.forEachSlot(ctx, n, func(j int) error {
		return c.callFinalize(ctx, stripeID, j, maxEpoch+1)
	}); err != nil {
		release(true)
		return err
	}
	// finalize unlocked every node; nothing to release.
	sp.End()
	return nil
}

// tryLockSlot acquires the L1 lock on one slot, retrying through node
// remaps (a replacement node starts unlocked, so the retry succeeds).
// A slot that stays unreachable surfaces a typed ErrUnavailable.
func (c *Client) tryLockSlot(ctx context.Context, stripeID uint64, j int) (*proto.TryLockReply, error) {
	bo := c.newBackoff()
	att := newAttempts("trylock", stripeID, j)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		node, err := c.cfg.Resolver.Node(stripeID, j)
		if err != nil {
			return nil, fmt.Errorf("core: resolve slot %d: %w", j, err)
		}
		actx, cancel := c.attemptCtx(ctx)
		rep, err := node.TryLock(actx, &proto.TryLockReq{Stripe: stripeID, Slot: int32(j), Mode: proto.L1, Caller: c.cfg.ID})
		cancel()
		if err == nil {
			return rep, nil
		}
		att.note(err)
		c.cfg.Resolver.ReportFailure(stripeID, j, node)
		if attempt >= 3 {
			return nil, c.unavailable(att)
		}
		if err := bo.pause(ctx); err != nil {
			return nil, err
		}
	}
}

// getStates reads get_state from the given slots in parallel. An
// unreachable slot (even after a remap retry) yields a nil entry,
// which the callers treat like INIT.
func (c *Client) getStates(ctx context.Context, stripeID uint64, slots []int) []*proto.GetStateReply {
	return c.getStatesOpt(ctx, stripeID, slots, false)
}

// getStatesOpt is getStates with an optional NoBlock flag: the frugal
// recovery path reads write-id lists and modes from every slot but
// leaves block content on the nodes.
func (c *Client) getStatesOpt(ctx context.Context, stripeID uint64, slots []int, noBlock bool) []*proto.GetStateReply {
	states := make([]*proto.GetStateReply, c.cfg.Code.N())
	var wg sync.WaitGroup
	for _, j := range slots {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for attempt := 0; attempt < 2; attempt++ {
				node, err := c.cfg.Resolver.Node(stripeID, j)
				if err != nil {
					return
				}
				actx, cancel := c.attemptCtx(ctx)
				rep, err := node.GetState(actx, &proto.GetStateReq{Stripe: stripeID, Slot: int32(j), NoBlock: noBlock})
				cancel()
				if err == nil {
					states[j] = rep
					return
				}
				c.cfg.Resolver.ReportFailure(stripeID, j, node)
			}
		}(j)
	}
	wg.Wait()
	return states
}

// reconstructFrugal writes recovered stripe content back without
// pulling any surviving block through this client: consistent slots
// are told to keep their blocks in place (ReconstructReq.InPlace), and
// each lost block is fetched as a single aggregated partial sum
// (Sum over j of alpha_j * block_j) computed along the transport's
// aggregation tree. The coordinator's link carries one block-sized
// reply per *lost* block instead of k whole survivor blocks. Any
// refusal or transport error aborts the attempt; the caller falls
// back to whole-block write-back.
func (c *Client) reconstructFrugal(ctx context.Context, stripeID uint64, cset slotSet, csetSorted []int, cset32 []int32) ([]uint64, error) {
	n := c.cfg.Code.N()
	k := c.cfg.Code.K()
	avail := csetSorted[:k]
	damaged := make([]int, 0, n-len(csetSorted))
	for j := 0; j < n; j++ {
		if !cset.has(j) {
			damaged = append(damaged, j)
		}
	}
	var rows [][]byte
	if len(damaged) > 0 {
		var err error
		rows, err = c.cfg.Code.ReconstructRows(avail, damaged)
		if err != nil {
			return nil, err
		}
	}
	rebuilt := make(map[int][]byte, len(damaged))
	for di, t := range damaged {
		calls := make([]proto.PartialCall, 0, k)
		for m, j := range avail {
			node, err := c.cfg.Resolver.Node(stripeID, j)
			if err != nil {
				return nil, fmt.Errorf("core: resolve slot %d: %w", j, err)
			}
			calls = append(calls, proto.PartialCall{Node: node, Req: &proto.PartialSumReq{
				Stripe: stripeID, Slot: int32(j), Coef: rows[di][m],
			}})
		}
		sum, err := c.cfg.Aggregate.AggregateSum(ctx, calls)
		if err != nil {
			return nil, fmt.Errorf("core: aggregate block for slot %d: %w", t, err)
		}
		if len(sum) != c.cfg.BlockSize {
			return nil, fmt.Errorf("core: aggregated block for slot %d has %d bytes, want %d", t, len(sum), c.cfg.BlockSize)
		}
		rebuilt[t] = sum
	}

	epochs := make([]uint64, n)
	if err := c.forEachSlot(ctx, n, func(j int) error {
		blk, lost := rebuilt[j]
		if !lost {
			// Consistent slot: keep the block it already holds. No
			// remap retry here — a slot that remapped since get_state
			// is INIT on its replacement and must receive content, so
			// the error routes the whole attempt to the fallback.
			node, err := c.cfg.Resolver.Node(stripeID, j)
			if err != nil {
				return fmt.Errorf("core: resolve slot %d: %w", j, err)
			}
			rep, err := node.Reconstruct(ctx, &proto.ReconstructReq{
				Stripe: stripeID, Slot: int32(j), CSet: cset32, InPlace: true,
			})
			if err != nil {
				return fmt.Errorf("core: in-place reconstruct slot %d: %w", j, err)
			}
			epochs[j] = rep.Epoch
			return nil
		}
		rep, err := c.callReconstruct(ctx, stripeID, j, cset32, blk)
		if err != nil {
			return err
		}
		epochs[j] = rep.Epoch
		return nil
	}); err != nil {
		return nil, err
	}
	return epochs, nil
}

// waitForConsistentSet implements Fig. 6 lines 11-20: find a
// consistent set of at least k+slack blocks, weakening locks to L0 so
// outstanding writes can finish their adds, then re-locking with
// getrecent before trusting the result.
func (c *Client) waitForConsistentSet(ctx context.Context, stripeID uint64, states []*proto.GetStateReply) (slotSet, error) {
	n, k := c.cfg.Code.N(), c.cfg.Code.K()
	redundant := make([]int, 0, n-k)
	for j := k; j < n; j++ {
		redundant = append(redundant, j)
	}

	need := func() int {
		initCount := 0
		for _, st := range states {
			if st == nil || st.OpMode == proto.Init {
				initCount++
			}
		}
		slack := c.cfg.TD - initCount
		if slack < 0 {
			slack = 0
		}
		return k + slack
	}

	cset := findConsistentK(states, k)
	rounds := 0
	settled := false
	for cset.size() < need() && !settled {
		// Let outstanding writes complete their adds (L0 admits adds
		// but the L1 lock on data nodes keeps blocking swaps, so no
		// new writes start).
		if err := c.forEachSlotList(ctx, redundant, func(j int) error {
			return c.setLockSlot(ctx, stripeID, j, proto.L0)
		}); err != nil {
			return nil, err
		}
		for cset.size() < need() {
			rounds++
			if rounds > c.cfg.RecoveryPollLimit {
				// The consistent set stopped growing: the missing adds
				// belong to crashed clients and will never arrive
				// (t_p was exceeded). Per Section 3.10 the system must
				// still be repairable while no storage node has
				// crashed, so settle for any consistent set of at
				// least k blocks — decoding from it is safe; only the
				// slack hedge against further storage crashes is lost.
				if cset.size() >= k {
					settled = true
					break
				}
				if debugRecovery {
					dumpStates(stripeID, states)
				}
				return nil, fmt.Errorf("%w: stripe %d: %d consistent of %d needed after %d polls",
					ErrUnrecoverable, stripeID, cset.size(), need(), rounds)
			}
			if err := c.pause(ctx); err != nil {
				return nil, err
			}
			fresh := c.getStatesOpt(ctx, stripeID, redundant, c.cfg.Aggregate != nil)
			for _, j := range redundant {
				states[j] = fresh[j]
			}
			cset = findConsistentK(states, k)
		}
		// Re-lock before further adds slip in; any redundant node whose
		// recentlist moved between get_state and getrecent is dropped
		// from the set (Fig. 6 lines 19-20).
		lists := make([][]proto.TIDTime, n)
		if err := c.forEachSlotList(ctx, redundant, func(j int) error {
			node, err := c.cfg.Resolver.Node(stripeID, j)
			if err != nil {
				return err
			}
			rep, err := node.GetRecent(ctx, &proto.GetRecentReq{Stripe: stripeID, Slot: int32(j), Mode: proto.L1, Caller: c.cfg.ID})
			if err != nil {
				c.cfg.Resolver.ReportFailure(stripeID, j, node)
				lists[j] = nil
				return nil // treat as changed; the slot drops from cset
			}
			lists[j] = rep.RecentList
			return nil
		}); err != nil {
			return nil, err
		}
		for _, j := range redundant {
			if !cset.has(j) {
				continue
			}
			if states[j] == nil || !tidTimesEqual(lists[j], states[j].RecentList) {
				cset.remove(j)
			}
		}
	}
	return cset, nil
}

func (c *Client) setLockSlot(ctx context.Context, stripeID uint64, j int, mode proto.LockMode) error {
	node, err := c.cfg.Resolver.Node(stripeID, j)
	if err != nil {
		return err
	}
	if _, err := node.SetLock(ctx, &proto.SetLockReq{Stripe: stripeID, Slot: int32(j), Mode: mode, Caller: c.cfg.ID}); err != nil {
		c.cfg.Resolver.ReportFailure(stripeID, j, node)
	}
	return nil
}

// callReconstruct writes recovered content to a slot, retrying once
// through a remap (the replacement accepts reconstruct in INIT mode).
func (c *Client) callReconstruct(ctx context.Context, stripeID uint64, j int, cset []int32, blk []byte) (*proto.ReconstructReply, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		node, err := c.cfg.Resolver.Node(stripeID, j)
		if err != nil {
			return nil, err
		}
		rep, err := node.Reconstruct(ctx, &proto.ReconstructReq{Stripe: stripeID, Slot: int32(j), CSet: cset, Block: blk})
		if err == nil {
			return rep, nil
		}
		c.cfg.Resolver.ReportFailure(stripeID, j, node)
		lastErr = err
	}
	return nil, fmt.Errorf("core: reconstruct slot %d: %w", j, lastErr)
}

func (c *Client) callFinalize(ctx context.Context, stripeID uint64, j int, epoch uint64) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		node, err := c.cfg.Resolver.Node(stripeID, j)
		if err != nil {
			return err
		}
		if _, err := node.Finalize(ctx, &proto.FinalizeReq{Stripe: stripeID, Slot: int32(j), Epoch: epoch}); err == nil {
			return nil
		} else {
			c.cfg.Resolver.ReportFailure(stripeID, j, node)
			lastErr = err
		}
	}
	return fmt.Errorf("core: finalize slot %d: %w", j, lastErr)
}

// forEachSlot runs fn for slots 0..n-1 in parallel and returns the
// first error.
func (c *Client) forEachSlot(ctx context.Context, n int, fn func(j int) error) error {
	return c.forEachSlotList(ctx, allSlots(n), fn)
}

func (c *Client) forEachSlotList(ctx context.Context, slots []int, fn func(j int) error) error {
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	for idx, j := range slots {
		wg.Add(1)
		go func(idx, j int) {
			defer wg.Done()
			errs[idx] = fn(j)
		}(idx, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	_ = ctx
	return nil
}

func allSlots(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// --- find_consistent (Fig. 6) -------------------------------------------

type tidSet map[proto.TID]struct{}

func (s tidSet) equal(o tidSet) bool {
	if len(s) != len(o) {
		return false
	}
	for t := range s {
		if _, ok := o[t]; !ok {
			return false
		}
	}
	return true
}

// findConsistentK returns a maximal set S of slots such that
// (1) every member is in NORM mode,
// (2) all redundant members saw the same set of writes, and
// (3) for every redundant member r and data member j, the writes r saw
// originating from j are exactly the writes j saw —
// all modulo the union G of oldlists: a tid in any oldlist belongs to
// a write that completed at every node (GC phase 2 runs only after
// the write finished everywhere), so it is consistent by construction
// and excluded from the comparison.
//
// The search space is one candidate per redundant-signature group plus
// the all-data candidate; the true maximal set always has this shape
// because condition (2) forces all redundant members of S to share a
// signature.
func findConsistentK(states []*proto.GetStateReply, k int) slotSet {
	n := len(states)
	// Collect candidates and the oldlist union G.
	g := make(tidSet)
	norm := make([]bool, n)
	for j, st := range states {
		if st == nil || st.OpMode != proto.Norm {
			continue
		}
		norm[j] = true
		for _, e := range st.OldList {
			g[e.TID] = struct{}{}
		}
	}
	// f(j) = recentlist tids minus G.
	f := make([]tidSet, n)
	for j, st := range states {
		if !norm[j] {
			continue
		}
		fs := make(tidSet)
		for _, e := range st.RecentList {
			if _, inG := g[e.TID]; !inG {
				fs[e.TID] = struct{}{}
			}
		}
		f[j] = fs
	}

	// Group redundant candidates by their signature f(r).
	groups := make(map[string][]int)
	for j := k; j < n; j++ {
		if norm[j] {
			key := signatureKey(f[j])
			groups[key] = append(groups[key], j)
		}
	}

	// The all-data candidate: with no redundant members, conditions
	// (2) and (3) are vacuous.
	best := newSlotSet()
	for j := 0; j < k; j++ {
		if norm[j] {
			best.add(j)
		}
	}

	// One candidate per signature group: the group's redundant slots
	// plus every data slot whose own writes match the group's view of
	// that slot.
	for _, members := range groups {
		fg := f[members[0]]
		cand := newSlotSet(members...)
		for j := 0; j < k; j++ {
			if !norm[j] {
				continue
			}
			required := make(tidSet)
			for t := range fg {
				if int(t.Block) == j {
					required[t] = struct{}{}
				}
			}
			if f[j].equal(required) {
				cand.add(j)
			}
		}
		if cand.size() > best.size() {
			best = cand
		}
	}
	return best
}

// tidTimesEqual compares two recentlists entry-wise.
func tidTimesEqual(a, b []proto.TIDTime) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// signatureKey builds a canonical byte-string key for a tid set.
func signatureKey(s tidSet) string {
	tids := make([]proto.TID, 0, len(s))
	for t := range s {
		tids = append(tids, t)
	}
	// Sort for canonical order (tiny sets; insertion sort).
	for i := 1; i < len(tids); i++ {
		for j := i; j > 0 && tidLess(tids[j], tids[j-1]); j-- {
			tids[j], tids[j-1] = tids[j-1], tids[j]
		}
	}
	buf := make([]byte, 0, len(tids)*16)
	var tmp [16]byte
	for _, t := range tids {
		binary.BigEndian.PutUint64(tmp[0:8], t.Seq)
		binary.BigEndian.PutUint32(tmp[8:12], t.Block)
		binary.BigEndian.PutUint32(tmp[12:16], uint32(t.Client))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

func tidLess(a, b proto.TID) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Block != b.Block {
		return a.Block < b.Block
	}
	return a.Client < b.Client
}

// debugRecovery enables state dumps when recovery cannot settle.
var debugRecovery = os.Getenv("ECSTORE_DEBUG_RECOVERY") != ""

func dumpStates(stripeID uint64, states []*proto.GetStateReply) {
	fmt.Fprintf(os.Stderr, "--- unsettled stripe %d ---\n", stripeID)
	for j, st := range states {
		if st == nil {
			fmt.Fprintf(os.Stderr, "  slot %d: <nil>\n", j)
			continue
		}
		fmt.Fprintf(os.Stderr, "  slot %d: op=%v lock=%v epoch=%d recent=%v old=%v\n",
			j, st.OpMode, st.LockMode, st.Epoch, proto.TIDsOf(st.RecentList), proto.TIDsOf(st.OldList))
	}
}

package core

import (
	"context"
	"fmt"

	"ecstore/internal/proto"
)

// ScrubResult is the outcome of auditing one stripe.
type ScrubResult int

// Scrub outcomes.
const (
	// ScrubClean: every block present, no writes in flight, parity
	// verified against the erasure code.
	ScrubClean ScrubResult = iota + 1
	// ScrubBusy: writes or recovery were in flight (non-empty
	// recentlists or locks); nothing can be concluded without
	// quiescing, so nothing was checked. Try again later.
	ScrubBusy
	// ScrubRepaired: the audit found damage (bit rot, missing or
	// inconsistent blocks) and recovery was run to repair it.
	ScrubRepaired
)

func (r ScrubResult) String() string {
	switch r {
	case ScrubClean:
		return "clean"
	case ScrubBusy:
		return "busy"
	case ScrubRepaired:
		return "repaired"
	default:
		return fmt.Sprintf("ScrubResult(%d)", int(r))
	}
}

// ScrubStripe audits one stripe end to end: it reads every block's
// state and, if the stripe is quiescent (no outstanding write
// identifiers, no locks), verifies that the redundant blocks equal the
// coded combination of the data blocks. Silent corruption — bit rot, a
// lost update inside a storage device — is exactly what the erasure
// code can detect while n-k redundancy survives; a failed audit
// triggers recovery, which rebuilds the stripe from a consistent
// subset.
//
// Scrubbing is lock-free and best-effort: a busy stripe is skipped
// (reported as ScrubBusy) rather than locked, so background scrubs
// never stall foreground I/O. The paper leaves scrubbing to "an
// industrial-strength distributed disk array" built on the protocol;
// this is that audit loop.
func (c *Client) ScrubStripe(ctx context.Context, stripeID uint64) (ScrubResult, error) {
	n := c.cfg.Code.N()
	states := c.getStates(ctx, stripeID, allSlots(n))

	blocks := make([][]byte, n)
	for j, st := range states {
		if st == nil || st.OpMode != proto.Norm {
			// Missing or unreconstructed block: repair.
			return c.scrubRepair(ctx, stripeID, nil)
		}
		if st.LockMode != proto.Unlocked || len(st.RecentList) != 0 || len(st.OldList) != 0 {
			return ScrubBusy, nil
		}
		if !st.BlockValid {
			return c.scrubRepair(ctx, stripeID, nil)
		}
		blocks[j] = st.Block
	}
	ok, err := c.cfg.Code.Verify(blocks)
	if err != nil {
		return 0, fmt.Errorf("core: scrub stripe %d: %w", stripeID, err)
	}
	if ok {
		return ScrubClean, nil
	}
	// Parity mismatch on a quiescent stripe: silent corruption.
	// Recovery alone cannot fix it — the rotted block's write
	// identifiers are perfectly consistent, so find_consistent would
	// happily include it. Localize the corrupt block first (possible
	// while at most p-1... strictly, while exactly one block rotted and
	// p >= 2), then recover with that block excluded so phase 3
	// recomputes it.
	bad, located := c.localizeCorruption(blocks)
	if !located {
		return 0, fmt.Errorf("%w: stripe %d parity mismatch not localizable to one block", ErrUnrecoverable, stripeID)
	}
	return c.scrubRepair(ctx, stripeID, bad)
}

// localizeCorruption finds the single corrupted block of an otherwise
// consistent stripe: erasing the right block and reconstructing it
// from the rest yields a stripe that verifies. Requires p >= 2 (with
// p = 1 a single corruption is detectable but not localizable).
func (c *Client) localizeCorruption(blocks [][]byte) (slotSet, bool) {
	n := c.cfg.Code.N()
	for j := 0; j < n; j++ {
		work := make([][]byte, n)
		for i := range blocks {
			if i == j {
				continue
			}
			work[i] = append([]byte(nil), blocks[i]...)
		}
		if err := c.cfg.Code.Reconstruct(work); err != nil {
			continue
		}
		if ok, err := c.cfg.Code.Verify(work); err == nil && ok {
			return newSlotSet(j), true
		}
	}
	return nil, false
}

func (c *Client) scrubRepair(ctx context.Context, stripeID uint64, exclude slotSet) (ScrubResult, error) {
	err := c.recoverStripe(ctx, stripeID, exclude)
	switch {
	case err == nil:
		return ScrubRepaired, nil
	case err == ErrRecoveryBusy:
		return ScrubBusy, nil
	default:
		return 0, err
	}
}

// ScrubTracked audits every stripe this client has touched and returns
// per-outcome counts.
func (c *Client) ScrubTracked(ctx context.Context) (clean, busy, repaired int, err error) {
	for _, s := range c.TrackedStripes() {
		if err := ctx.Err(); err != nil {
			return clean, busy, repaired, err
		}
		res, serr := c.ScrubStripe(ctx, s)
		if serr != nil {
			return clean, busy, repaired, serr
		}
		switch res {
		case ScrubClean:
			clean++
		case ScrubBusy:
			busy++
		case ScrubRepaired:
			repaired++
		}
	}
	return clean, busy, repaired, nil
}

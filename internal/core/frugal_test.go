package core_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/proto"
	"ecstore/internal/transport"
)

const frugalBlockSize = 4096

func frugalVal(x uint64) []byte {
	b := make([]byte, frugalBlockSize)
	binary.BigEndian.PutUint64(b, x)
	for i := 8; i < frugalBlockSize; i++ {
		b[i] = byte(x * 31)
	}
	return b
}

// frugalCluster builds a K=2/N=4 cluster whose node handles share one
// Counters block and whose client recovers through a
// CountingAggregator.
func frugalCluster(t *testing.T, ctr *transport.Counters, aggregate proto.Aggregator) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		K: 2, N: 4, BlockSize: frugalBlockSize,
		WrapNode: func(phys int, n proto.StorageNode) proto.StorageNode {
			return transport.NewCounting(n, ctr)
		},
		ClientTweak: func(cfg *core.Config) { cfg.Aggregate = aggregate },
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// contentRecvd sums the reply bytes of the operations that can carry
// block content toward the recovery coordinator.
func contentRecvd(ctr *transport.Counters) uint64 {
	return ctr.GetState.BytesRecvd.Load() + ctr.PartialSum.BytesRecvd.Load() + ctr.Read.BytesRecvd.Load()
}

// TestFrugalRecoveryBandwidth is the heart of the bandwidth-frugal
// repair claim: recovering one lost block must pull strictly less than
// k block payloads through the coordinator's link, because survivors
// combine their alpha*block contributions along the aggregation tree
// and only the final sum crosses to the coordinator.
func TestFrugalRecoveryBandwidth(t *testing.T) {
	var ctr transport.Counters
	c := frugalCluster(t, &ctr, transport.NewCountingAggregator(&ctr))
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < c.Code.K(); i++ {
		if err := cl.WriteBlock(ctx, 0, i, frugalVal(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}

	c.CrashNodeForStripeSlot(0, 3)
	beforeRecvd := contentRecvd(&ctr)
	if err := cl.Recover(ctx, 0); err != nil {
		t.Fatalf("recover: %v", err)
	}
	ingress := contentRecvd(&ctr) - beforeRecvd

	stats := cl.Stats()
	if got := stats.FrugalRecoveries.Load(); got != 1 {
		t.Fatalf("FrugalRecoveries = %d, want 1", got)
	}
	if got := stats.FrugalFallbacks.Load(); got != 0 {
		t.Fatalf("FrugalFallbacks = %d, want 0", got)
	}

	// One lost block, k=2: the coordinator must receive the one
	// aggregated block (~1x) plus small control replies — strictly
	// below the naive k blocks.
	kBytes := uint64(c.Code.K() * frugalBlockSize)
	if ingress >= kBytes {
		t.Fatalf("frugal coordinator ingress %d bytes, want < k*B = %d", ingress, kBytes)
	}
	if ingress < frugalBlockSize {
		t.Fatalf("frugal coordinator ingress %d bytes, below one block %d — sum never arrived?", ingress, frugalBlockSize)
	}
	// The accumulator travelled between survivors, not through us.
	if tree := ctr.PartialSumTreeBytes.Load(); tree == 0 {
		t.Fatal("no bytes booked on aggregation-tree inner edges")
	}

	mustVerify(t, c, 0)
	for i := 0; i < c.Code.K(); i++ {
		got, err := cl.ReadBlock(ctx, 0, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, frugalVal(uint64(i+1))) {
			t.Fatalf("slot %d content diverged after frugal recovery", i)
		}
	}
}

// TestNaiveRecoveryBandwidthBaseline pins the contrast: without an
// aggregator the same crash pulls at least k whole blocks through the
// coordinator (every consistent survivor ships its block in get_state).
func TestNaiveRecoveryBandwidthBaseline(t *testing.T) {
	var ctr transport.Counters
	c := frugalCluster(t, &ctr, nil)
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < c.Code.K(); i++ {
		if err := cl.WriteBlock(ctx, 0, i, frugalVal(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashNodeForStripeSlot(0, 3)
	beforeRecvd := contentRecvd(&ctr)
	if err := cl.Recover(ctx, 0); err != nil {
		t.Fatalf("recover: %v", err)
	}
	ingress := contentRecvd(&ctr) - beforeRecvd
	if kBytes := uint64(c.Code.K() * frugalBlockSize); ingress < kBytes {
		t.Fatalf("naive coordinator ingress %d bytes, expected >= k*B = %d", ingress, kBytes)
	}
	if got := cl.Stats().FrugalRecoveries.Load(); got != 0 {
		t.Fatalf("FrugalRecoveries = %d without an aggregator", got)
	}
	mustVerify(t, c, 0)
}

// noPartial hides the PartialSummer capability of the node it wraps,
// standing in for an old storage node that predates the frame.
type noPartial struct{ proto.StorageNode }

// TestFrugalFallsBackWithoutCapability: an aggregator over nodes that
// do not speak partial sums must not break recovery — the client falls
// back to the whole-block path and still restores the stripe.
func TestFrugalFallsBackWithoutCapability(t *testing.T) {
	c, err := cluster.New(cluster.Options{
		K: 2, N: 4, BlockSize: frugalBlockSize,
		WrapNode: func(phys int, n proto.StorageNode) proto.StorageNode {
			return noPartial{n}
		},
		ClientTweak: func(cfg *core.Config) { cfg.Aggregate = transport.Chain{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < c.Code.K(); i++ {
		if err := cl.WriteBlock(ctx, 0, i, frugalVal(uint64(i+7))); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashNodeForStripeSlot(0, 2)
	if err := cl.Recover(ctx, 0); err != nil {
		t.Fatalf("recover: %v", err)
	}
	stats := cl.Stats()
	if got := stats.FrugalFallbacks.Load(); got != 1 {
		t.Fatalf("FrugalFallbacks = %d, want 1", got)
	}
	if got := stats.FrugalRecoveries.Load(); got != 0 {
		t.Fatalf("FrugalRecoveries = %d, want 0", got)
	}
	mustVerify(t, c, 0)
	for i := 0; i < c.Code.K(); i++ {
		got, err := cl.ReadBlock(ctx, 0, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, frugalVal(uint64(i+7))) {
			t.Fatalf("slot %d content diverged after fallback recovery", i)
		}
	}
}

// TestFrugalRecoveryParityLoss reconstructs a *data* block through the
// aggregation path (coefficients come from the decode matrix row, not
// a generator row) and verifies content, exercising the target<k
// branch of ReconstructRows end to end.
func TestFrugalRecoveryDataLoss(t *testing.T) {
	var ctr transport.Counters
	c := frugalCluster(t, &ctr, transport.NewCountingAggregator(&ctr))
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < c.Code.K(); i++ {
		if err := cl.WriteBlock(ctx, 0, i, frugalVal(uint64(i+3))); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashNodeForStripeSlot(0, 0) // a data slot
	if err := cl.Recover(ctx, 0); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := cl.Stats().FrugalRecoveries.Load(); got != 1 {
		t.Fatalf("FrugalRecoveries = %d, want 1", got)
	}
	mustVerify(t, c, 0)
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frugalVal(3)) {
		t.Fatal("data block content diverged after frugal recovery")
	}
}

package core

import (
	"fmt"

	"context"

	"ecstore/internal/obs"
)

// readDegraded serves READ(i) without the data node: it collects
// get_state from all n slots, picks a mutually consistent set of at
// least k readable blocks with find_consistent (the same selection
// recovery phase 2 uses, so a half-landed write can never leak a
// never-written value), and decodes block i locally. No locks are
// taken and nothing is written back — the stripe stays degraded until
// recovery or monitoring repairs it, but the read completes at the
// paper's availability bound: any k survivors suffice.
//
// Regularity is preserved: the consistent set reflects either a state
// before or after any concurrent write's adds, both of which are legal
// results for a read that overlaps the write.
func (c *Client) readDegraded(ctx context.Context, stripeID uint64, i int) ([]byte, error) {
	k, n := c.cfg.Code.K(), c.cfg.Code.N()
	sp := obs.StartSpan(c.obs.readFallback)

	states := c.getStates(ctx, stripeID, allSlots(n))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cset := findConsistentK(states, k)
	// If the data node answered get_state, its block is consistent —
	// the Read error was transient; serve straight from the state.
	if cset.has(i) && states[i] != nil && states[i].BlockValid {
		c.stats.DegradedReads.Add(1)
		c.obs.degradedReads.Inc()
		sp.End()
		return states[i].Block, nil
	}
	for j := range cset {
		if states[j] == nil || !states[j].BlockValid {
			cset.remove(j)
		}
	}
	if cset.size() < k {
		return nil, fmt.Errorf("core: degraded read of stripe %d slot %d: %d consistent survivors, need %d",
			stripeID, i, cset.size(), k)
	}
	stripeBlocks := make([][]byte, n)
	for j := range cset {
		stripeBlocks[j] = states[j].Block
	}
	data, err := c.cfg.Code.DecodeData(stripeBlocks)
	if err != nil {
		return nil, fmt.Errorf("core: degraded decode of stripe %d: %w", stripeID, err)
	}
	c.stats.DegradedReads.Add(1)
	c.obs.degradedReads.Inc()
	sp.End()
	return data[i], nil
}

package repair

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/obs"
)

// Source is the scheduler's view of the storage it heals. The volume
// layer implements it; tests substitute fakes.
type Source interface {
	// Groups returns the number of stripe groups.
	Groups() int
	// GroupDamage probes one group and returns how many of its shards
	// are healthy out of the total. survivors == total means healthy.
	GroupDamage(ctx context.Context, group uint64) (survivors, total int, err error)
	// RepairGroup restores a group: refreshes its placement and
	// re-runs recovery over its damaged stripes. It returns the number
	// of stripes recovered and the nominal bytes of repair traffic the
	// pass generated, for the bandwidth governor.
	RepairGroup(ctx context.Context, group uint64) (stripes int, bytes int64, err error)
	// PoolEpoch returns the placement pool's membership version; a
	// change signals that rebalance moves may be due.
	PoolEpoch() uint64
	// StaleGroups lists groups whose current site assignment differs
	// from the rendezvous-hash ideal under the present membership.
	StaleGroups(ctx context.Context) ([]uint64, error)
}

// Options configures a Scheduler.
type Options struct {
	// Source is the storage under repair. Required.
	Source Source
	// Bandwidth caps repair traffic in bytes per second; 0 means
	// unlimited.
	Bandwidth int64
	// Burst is the token-bucket burst allowance in bytes; 0 defaults
	// to one second of Bandwidth.
	Burst int64
	// Interval paces the periodic inspection sweep. Defaults to 30s.
	Interval time.Duration
	// Obs optionally receives repair.* metrics.
	Obs *obs.Registry
}

// Stats counts scheduler events.
type Stats struct {
	Sweeps          atomic.Uint64
	Reports         atomic.Uint64 // external damage reports accepted
	Repairs         atomic.Uint64 // repair items drained
	RebalanceMoves  atomic.Uint64 // rebalance items drained
	StripesRepaired atomic.Uint64
	BytesRepaired   atomic.Uint64
	Failures        atomic.Uint64 // probe or repair errors
}

// Scheduler drains the repair queue in the background. Start it once;
// Stop blocks until the worker exits. Damage found by the volume layer
// arrives through Report; everything else is found by the sweep.
type Scheduler struct {
	opts   Options
	bucket *TokenBucket

	mu    sync.Mutex
	queue *Queue

	reports chan uint64
	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	started bool

	// parked is true while the worker is blocked in its select with an
	// empty queue; change is closed and replaced on every parked flip
	// so WaitIdle can block on state transitions instead of polling.
	// pending counts accepted reports and kicks not yet fully
	// processed, closing the window where a submission sits in a
	// channel (or is mid-inspect) while the worker still looks parked.
	parked  bool
	change  chan struct{}
	pending atomic.Int64

	lastEpoch atomic.Uint64

	stats Stats
}

// NewScheduler builds a scheduler. It does not start the worker.
func NewScheduler(opts Options) (*Scheduler, error) {
	if opts.Source == nil {
		return nil, fmt.Errorf("repair: Options.Source is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = 30 * time.Second
	}
	s := &Scheduler{
		opts:    opts,
		bucket:  NewTokenBucket(opts.Bandwidth, opts.Burst),
		queue:   NewQueue(),
		reports: make(chan uint64, 1024),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		change:  make(chan struct{}),
	}
	s.lastEpoch.Store(opts.Source.PoolEpoch())
	if reg := opts.Obs; reg != nil {
		mirror := func(name string, u *atomic.Uint64) {
			reg.Func(name, func() int64 { return int64(u.Load()) })
		}
		mirror("repair.sweeps", &s.stats.Sweeps)
		mirror("repair.reports", &s.stats.Reports)
		mirror("repair.repairs", &s.stats.Repairs)
		mirror("repair.rebalance_moves", &s.stats.RebalanceMoves)
		mirror("repair.stripes_repaired", &s.stats.StripesRepaired)
		mirror("repair.bytes_repaired", &s.stats.BytesRepaired)
		mirror("repair.failures", &s.stats.Failures)
		reg.Func("repair.queue_depth", func() int64 { return int64(s.QueueDepth()) })
	}
	return s, nil
}

// Stats exposes the scheduler's event counters.
func (s *Scheduler) Stats() *Stats { return &s.stats }

// QueueDepth returns the number of queued groups.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// Report tells the scheduler a group looks damaged. It never blocks:
// under a report storm the channel overflows harmlessly — the group is
// damaged either way and the next sweep finds it.
func (s *Scheduler) Report(group uint64) {
	select {
	case s.reports <- group:
		s.pending.Add(1)
		s.stats.Reports.Add(1)
	default:
	}
}

// Start launches the background worker. Starting twice is an error.
func (s *Scheduler) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("repair: scheduler already started")
	}
	s.started = true
	go s.run()
	return nil
}

// Stop terminates the worker and waits for it. Safe to call without
// Start (no-op) and safe to call twice.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.mu.Unlock()
	<-s.done
}

// Kick requests an immediate sweep (tests and admin tooling).
func (s *Scheduler) Kick() {
	select {
	case s.kick <- struct{}{}:
		s.pending.Add(1)
	default:
	}
}

// setParked flips the worker's parked state and wakes WaitIdle
// callers so they re-evaluate.
func (s *Scheduler) setParked(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.parked == v {
		return
	}
	s.parked = v
	close(s.change)
	s.change = make(chan struct{})
}

// WaitIdle blocks until the scheduler has no work left: the queue is
// drained, no item is mid-repair, and no report or kick is pending.
// Submit work first (Report, Kick), then wait — work submitted
// concurrently with an in-progress WaitIdle may or may not be
// awaited. Returns immediately if the scheduler is stopped, and with
// ctx's error if the context expires first.
func (s *Scheduler) WaitIdle(ctx context.Context) error {
	for {
		s.mu.Lock()
		idle := s.parked && s.queue.Len() == 0 && s.pending.Load() == 0
		ch := s.change
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ch:
		case <-s.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (s *Scheduler) run() {
	defer close(s.done)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-s.stop
		cancel()
	}()

	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		// Absorb pending reports before choosing work, so a
		// one-shard-from-loss report that just arrived outranks an
		// older, healthier item already queued.
		s.drainReports(ctx)
		if item, ok := s.popItem(); ok {
			s.runItem(ctx, item)
			continue
		}
		s.setParked(true)
		select {
		case <-s.stop:
			return
		case g := <-s.reports:
			s.setParked(false)
			s.inspect(ctx, g)
			s.pending.Add(-1)
		case <-s.kick:
			s.setParked(false)
			s.sweep(ctx)
			s.pending.Add(-1)
		case <-ticker.C:
			s.setParked(false)
			s.sweep(ctx)
		}
	}
}

func (s *Scheduler) drainReports(ctx context.Context) {
	for {
		select {
		case g := <-s.reports:
			s.inspect(ctx, g)
			s.pending.Add(-1)
		default:
			return
		}
	}
}

func (s *Scheduler) popItem() (Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Pop()
}

// inspect probes one group and queues (or dequeues) it accordingly.
func (s *Scheduler) inspect(ctx context.Context, g uint64) {
	survivors, total, err := s.opts.Source.GroupDamage(ctx, g)
	if err != nil {
		s.stats.Failures.Add(1)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if survivors < total {
		s.queue.Report(g, survivors, false)
	} else {
		s.queue.Remove(g)
	}
}

// sweep inspects every group and, when the pool membership moved,
// enqueues rebalance moves for groups off their ideal placement.
func (s *Scheduler) sweep(ctx context.Context) {
	s.stats.Sweeps.Add(1)
	src := s.opts.Source
	for g := uint64(0); g < uint64(src.Groups()); g++ {
		if ctx.Err() != nil {
			return
		}
		s.inspect(ctx, g)
	}
	if epoch := src.PoolEpoch(); epoch != s.lastEpoch.Load() {
		s.lastEpoch.Store(epoch)
		stale, err := src.StaleGroups(ctx)
		if err != nil {
			s.stats.Failures.Add(1)
			return
		}
		for _, g := range stale {
			s.mu.Lock()
			queued := s.queue.Contains(g)
			s.mu.Unlock()
			if queued {
				continue
			}
			// Survivor count = total: a pure placement move never
			// outranks damage repair.
			_, total, err := src.GroupDamage(ctx, g)
			if err != nil {
				s.stats.Failures.Add(1)
				continue
			}
			s.mu.Lock()
			s.queue.Report(g, total, true)
			s.mu.Unlock()
		}
	}
}

// runItem repairs one group, charges the traffic against the
// bandwidth governor, and re-inspects: a group still damaged after a
// productive pass goes straight back in the queue; an unproductive
// pass (nothing repairable yet) defers to the next sweep instead of
// spinning.
func (s *Scheduler) runItem(ctx context.Context, item Item) {
	stripes, bytes, err := s.opts.Source.RepairGroup(ctx, item.Group)
	if item.Rebalance {
		s.stats.RebalanceMoves.Add(1)
	} else {
		s.stats.Repairs.Add(1)
	}
	s.stats.StripesRepaired.Add(uint64(stripes))
	s.stats.BytesRepaired.Add(uint64(bytes))
	if err != nil {
		s.stats.Failures.Add(1)
		_ = s.bucket.Wait(ctx, bytes)
		return
	}
	_ = s.bucket.Wait(ctx, bytes)
	if stripes > 0 {
		s.inspect(ctx, item.Group)
	}
}

// Drain runs sweeps and repairs synchronously until the queue is
// empty and a final sweep finds nothing, or the context expires. It is
// the foreground form of the scheduler used by tests and experiments;
// do not call it while the background worker is running.
func (s *Scheduler) Drain(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.drainReports(ctx)
		item, ok := s.popItem()
		if !ok {
			s.sweep(ctx)
			if item, ok = s.popItem(); !ok {
				return nil
			}
		}
		s.runItem(ctx, item)
	}
}

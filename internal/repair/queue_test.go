package repair

import (
	"math/rand"
	"testing"
)

func TestQueueOrdersBySurvivorCount(t *testing.T) {
	q := NewQueue()
	q.Report(1, 3, false)
	q.Report(2, 1, false) // one shard from loss
	q.Report(3, 2, false)
	want := []uint64{2, 3, 1}
	for _, g := range want {
		it, ok := q.Pop()
		if !ok || it.Group != g {
			t.Fatalf("pop order wrong: got group %d ok=%v, want %d", it.Group, ok, g)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue not empty")
	}
}

func TestQueueFIFOAmongEquals(t *testing.T) {
	q := NewQueue()
	for g := uint64(0); g < 10; g++ {
		q.Report(g, 2, false)
	}
	for g := uint64(0); g < 10; g++ {
		it, _ := q.Pop()
		if it.Group != g {
			t.Fatalf("FIFO broken among equals: got %d, want %d", it.Group, g)
		}
	}
}

func TestQueueReReportRePrioritizes(t *testing.T) {
	q := NewQueue()
	q.Report(1, 4, false)
	q.Report(2, 3, false)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	// Group 1's damage worsens: it must now drain first.
	q.Report(1, 1, false)
	if q.Len() != 2 {
		t.Fatalf("re-report duplicated the entry: Len = %d", q.Len())
	}
	it, _ := q.Pop()
	if it.Group != 1 || it.Survivors != 1 {
		t.Fatalf("got group %d survivors %d, want group 1 survivors 1", it.Group, it.Survivors)
	}
}

func TestQueueDamageReportOutranksRebalance(t *testing.T) {
	q := NewQueue()
	q.Report(7, 5, true)
	q.Report(7, 2, false)
	it, _ := q.Pop()
	if it.Rebalance {
		t.Fatal("damage re-report did not clear the rebalance flag")
	}
	if it.Survivors != 2 {
		t.Fatalf("survivors = %d, want 2", it.Survivors)
	}
}

// TestQueuePropertyOrdering is the property test required by the
// scheduler's priority policy: under random interleavings of enqueue,
// re-report, remove, and dequeue, every pop returns a group with the
// minimum survivor count then present, and the queue's bookkeeping
// (one entry per group, exact membership) matches a naive model.
func TestQueuePropertyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		q := NewQueue()
		model := make(map[uint64]int) // group -> survivors
		for op := 0; op < 300; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // report (new or re-report)
				g := uint64(rng.Intn(20))
				s := rng.Intn(8)
				q.Report(g, s, false)
				model[g] = s
			case r < 6: // remove
				g := uint64(rng.Intn(20))
				_, inModel := model[g]
				if got := q.Remove(g); got != inModel {
					t.Fatalf("Remove(%d) = %v, model says %v", g, got, inModel)
				}
				delete(model, g)
			default: // pop
				it, ok := q.Pop()
				if !ok {
					if len(model) != 0 {
						t.Fatalf("queue empty but model holds %d groups", len(model))
					}
					continue
				}
				s, inModel := model[it.Group]
				if !inModel {
					t.Fatalf("popped group %d not in model", it.Group)
				}
				if s != it.Survivors {
					t.Fatalf("popped group %d survivors %d, model says %d", it.Group, it.Survivors, s)
				}
				for g, ms := range model {
					if ms < it.Survivors {
						t.Fatalf("popped survivors=%d while group %d has %d", it.Survivors, g, ms)
					}
				}
				delete(model, it.Group)
			}
			if q.Len() != len(model) {
				t.Fatalf("Len = %d, model size %d", q.Len(), len(model))
			}
		}
		// Drain: survivor counts must come out non-decreasing.
		last := -1
		for {
			it, ok := q.Pop()
			if !ok {
				break
			}
			if it.Survivors < last {
				t.Fatalf("drain not monotone: %d after %d", it.Survivors, last)
			}
			last = it.Survivors
			delete(model, it.Group)
		}
		if len(model) != 0 {
			t.Fatalf("%d groups never drained", len(model))
		}
	}
}

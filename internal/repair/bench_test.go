package repair

import (
	"testing"
	"time"
)

// BenchmarkQueueReportPop cycles a full queue: report 256 groups with
// varying survivor counts, then drain them in priority order. This is
// the scheduler's whole data-structure hot path.
func BenchmarkQueueReportPop(b *testing.B) {
	const groups = 256
	for i := 0; i < b.N; i++ {
		q := NewQueue()
		for g := uint64(0); g < groups; g++ {
			q.Report(g, int(g%7), false)
		}
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
}

// BenchmarkQueueReprioritize measures the upsert path: re-reporting
// already-queued groups with new survivor counts (heap.Fix, no churn).
func BenchmarkQueueReprioritize(b *testing.B) {
	const groups = 256
	q := NewQueue()
	for g := uint64(0); g < groups; g++ {
		q.Report(g, int(g%7), false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := uint64(i) % groups
		q.Report(g, (i+int(g))%7, false)
	}
}

// BenchmarkBucketReserve measures the governor's per-charge cost on the
// uncontended fast path (credit available, no stall computed).
func BenchmarkBucketReserve(b *testing.B) {
	tb := newTokenBucket(1<<40, 1<<40, time.Now)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Reserve(4096)
	}
}

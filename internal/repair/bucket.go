package repair

import (
	"context"
	"math"
	"sync"
	"time"
)

// TokenBucket is the scheduler's bandwidth governor: a classic token
// bucket holding at most Burst bytes of credit that refills at Rate
// bytes per second. Work is charged as it completes (repair traffic
// size is only known afterwards), driving the balance negative; the
// next Wait then stalls until the debt refills. Over any time window
// [t0, t1] the bytes admitted never exceed burst + rate*(t1-t0),
// which is the property the governor exists for and the one its tests
// assert.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second; <= 0 disables limiting
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket builds a governor admitting rate bytes/sec with the
// given burst allowance. rate <= 0 disables limiting entirely; a
// non-positive burst defaults to one second of rate so an occasional
// full-stripe write-back does not stall on a hairline budget.
func NewTokenBucket(rate, burst int64) *TokenBucket {
	return newTokenBucket(rate, burst, time.Now)
}

// newTokenBucket injects the clock, for deterministic tests.
func newTokenBucket(rate, burst int64, now func() time.Time) *TokenBucket {
	b := &TokenBucket{rate: float64(rate), burst: float64(burst), now: now}
	if b.burst <= 0 {
		b.burst = b.rate
	}
	b.tokens = b.burst
	b.last = now()
	return b
}

// Reserve charges n bytes against the bucket and returns how long the
// caller must wait before the charge is within budget. It never
// rejects: a charge larger than the burst simply waits out the debt.
func (b *TokenBucket) Reserve(n int64) time.Duration {
	if b.rate <= 0 || n <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0
	}
	// Round the stall up so a grant never lands before the exact
	// refill instant.
	return time.Duration(math.Ceil(-b.tokens / b.rate * float64(time.Second)))
}

// Wait charges n bytes and sleeps out any resulting debt, honouring
// cancellation (the debt stays charged either way — the work already
// happened).
func (b *TokenBucket) Wait(ctx context.Context, n int64) error {
	d := b.Reserve(n)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

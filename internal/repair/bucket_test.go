package repair

import (
	"math/rand"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBucketBurstThenStall(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTokenBucket(1000, 500, clk.now) // 1000 B/s, 500 B burst
	if d := b.Reserve(500); d != 0 {
		t.Fatalf("burst charge stalled %v", d)
	}
	// Bucket empty: the next 250 bytes must wait 250ms.
	if d := b.Reserve(250); d != 250*time.Millisecond {
		t.Fatalf("stall = %v, want 250ms", d)
	}
	// After 1s the debt (250) repays and the balance caps at the
	// burst: a full 500 passes free, the next 250 stalls again.
	clk.advance(time.Second)
	if d := b.Reserve(500); d != 0 {
		t.Fatalf("refilled charge stalled %v", d)
	}
	if d := b.Reserve(250); d != 250*time.Millisecond {
		t.Fatalf("stall = %v, want 250ms", d)
	}
}

func TestBucketUnlimitedWhenRateZero(t *testing.T) {
	b := NewTokenBucket(0, 0)
	for i := 0; i < 100; i++ {
		if d := b.Reserve(1 << 30); d != 0 {
			t.Fatalf("unlimited bucket stalled %v", d)
		}
	}
}

// TestBucketPropertyRateNeverExceeded is the governor's defining
// property: over ANY window of the simulated run, the bytes whose
// grant time falls inside the window never exceed burst plus
// rate*window. Charges are capped at the burst (a single
// larger-than-burst charge is admitted as one lump of debt and is
// covered by the cumulative property below). Random charge sizes and
// random clock advances; grants are recorded at the moment their
// stall expires.
func TestBucketPropertyRateNeverExceeded(t *testing.T) {
	const (
		rate  = 10_000 // B/s
		burst = 2_000
	)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		clk := &fakeClock{t: time.Unix(1000, 0)}
		b := newTokenBucket(rate, burst, clk.now)
		type grant struct {
			at time.Time
			n  int64
		}
		var grants []grant
		for i := 0; i < 200; i++ {
			n := int64(rng.Intn(burst) + 1)
			d := b.Reserve(n)
			// The charge is admitted once the stall has elapsed.
			grants = append(grants, grant{at: clk.t.Add(d), n: n})
			// Advance at least past the stall (the worker sleeps it
			// out), sometimes more (idle gaps).
			clk.advance(d + time.Duration(rng.Intn(100))*time.Millisecond)
		}
		// Check every window between grant pairs.
		for i := range grants {
			var sum int64
			for j := i; j < len(grants); j++ {
				sum += grants[j].n
				window := grants[j].at.Sub(grants[i].at).Seconds()
				// +8 bytes absorbs float64/nanosecond rounding in the
				// grant timestamps; real budgets are thousands of bytes.
				budget := int64(window*rate) + burst + 8
				if sum > budget {
					t.Fatalf("trial %d: window [%d,%d] admitted %d bytes, budget %d (%.3fs)",
						trial, i, j, sum, budget, window)
				}
			}
		}
	}
}

// TestBucketPropertyCumulativeWithDebt covers oversized charges: even
// when single charges exceed the burst (admitted as debt), the total
// admitted by any grant instant never exceeds burst plus rate times
// the elapsed run time.
func TestBucketPropertyCumulativeWithDebt(t *testing.T) {
	const (
		rate  = 10_000
		burst = 2_000
	)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		start := time.Unix(1000, 0)
		clk := &fakeClock{t: start}
		b := newTokenBucket(rate, burst, clk.now)
		var sum int64
		for i := 0; i < 200; i++ {
			n := int64(rng.Intn(3*burst) + 1)
			d := b.Reserve(n)
			sum += n
			grantAt := clk.t.Add(d)
			budget := int64(grantAt.Sub(start).Seconds()*rate) + burst + 8
			if sum > budget {
				t.Fatalf("trial %d: %d bytes admitted by %v, budget %d", trial, sum, grantAt.Sub(start), budget)
			}
			clk.advance(d + time.Duration(rng.Intn(50))*time.Millisecond)
		}
	}
}

func TestBucketWaitHonoursContext(t *testing.T) {
	b := NewTokenBucket(1, 1) // 1 B/s: a big charge waits ~forever
	ctx, cancel := newTestContext(t)
	cancel()
	if err := b.Wait(ctx, 1<<20); err == nil {
		t.Fatal("Wait returned nil on cancelled context")
	}
}

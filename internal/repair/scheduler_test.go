package repair

import (
	"context"
	"sync"
	"testing"
	"time"
)

func newTestContext(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx, cancel
}

// fakeSource is a scriptable Source: per-group survivor counts, a
// repair that heals the group, and a recorded repair order.
type fakeSource struct {
	mu        sync.Mutex
	groups    int
	total     int
	survivors map[uint64]int // missing key means healthy
	epoch     uint64
	stale     []uint64
	order     []uint64 // groups in repair order
	bytesPer  int64
}

func newFakeSource(groups, total int) *fakeSource {
	return &fakeSource{groups: groups, total: total, survivors: make(map[uint64]int), bytesPer: 1}
}

func (f *fakeSource) damage(g uint64, survivors int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.survivors[g] = survivors
}

func (f *fakeSource) Groups() int { return f.groups }

func (f *fakeSource) GroupDamage(ctx context.Context, g uint64) (int, int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.survivors[g]; ok {
		return s, f.total, nil
	}
	return f.total, f.total, nil
}

func (f *fakeSource) RepairGroup(ctx context.Context, g uint64) (int, int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.order = append(f.order, g)
	if _, damaged := f.survivors[g]; !damaged {
		return 0, 0, nil
	}
	delete(f.survivors, g)
	return 1, f.bytesPer, nil
}

func (f *fakeSource) PoolEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

func (f *fakeSource) StaleGroups(ctx context.Context) ([]uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint64(nil), f.stale...), nil
}

func (f *fakeSource) repairOrder() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint64(nil), f.order...)
}

// TestSchedulerRepairsMostDamagedFirst: a one-shard-from-loss group
// reported last must still drain first.
func TestSchedulerRepairsMostDamagedFirst(t *testing.T) {
	src := newFakeSource(8, 5)
	src.damage(1, 4)
	src.damage(2, 3)
	src.damage(3, 2) // one shard from loss (k=2 of 5... lowest survivor count)
	s, err := NewScheduler(Options{Source: src, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := newTestContext(t)
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	order := src.repairOrder()
	if len(order) < 3 {
		t.Fatalf("repaired %d groups, want 3", len(order))
	}
	if order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("repair order %v, want [3 2 1]", order[:3])
	}
	if got := s.Stats().Repairs.Load(); got != 3 {
		t.Fatalf("Repairs = %d, want 3", got)
	}
}

// TestSchedulerBackgroundWorkerDrainsReports: the Start/Stop worker
// must pick up external damage reports without waiting for a sweep.
func TestSchedulerBackgroundWorkerDrainsReports(t *testing.T) {
	src := newFakeSource(4, 5)
	src.damage(2, 1)
	s, err := NewScheduler(Options{Source: src, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Report(2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("background worker never repaired the reported group: %v", err)
	}
	order := src.repairOrder()
	if len(order) == 0 || order[0] != 2 {
		t.Fatalf("repair order = %v, want [2]", order)
	}
}

func TestSchedulerStartTwiceFails(t *testing.T) {
	src := newFakeSource(1, 3)
	s, err := NewScheduler(Options{Source: src, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("second Start did not fail")
	}
	s.Stop()
	s.Stop() // idempotent
}

// TestSchedulerEnqueuesRebalanceOnEpochChange: a pool epoch bump makes
// the sweep enqueue stale groups as rebalance moves, after all damage.
func TestSchedulerEnqueuesRebalanceOnEpochChange(t *testing.T) {
	src := newFakeSource(6, 5)
	s, err := NewScheduler(Options{Source: src, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	src.mu.Lock()
	src.epoch = 1
	src.stale = []uint64{4, 5}
	src.mu.Unlock()
	src.damage(1, 2)

	ctx, _ := newTestContext(t)
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	order := src.repairOrder()
	if len(order) != 3 {
		t.Fatalf("ran %d items, want 3 (1 repair + 2 rebalance): %v", len(order), order)
	}
	if order[0] != 1 {
		t.Fatalf("damage repair did not outrank rebalance: %v", order)
	}
	if got := s.Stats().RebalanceMoves.Load(); got != 2 {
		t.Fatalf("RebalanceMoves = %d, want 2", got)
	}
	if got := s.Stats().Repairs.Load(); got != 1 {
		t.Fatalf("Repairs = %d, want 1", got)
	}
}

// TestSchedulerGovernorPacesRepairs: with a tiny bandwidth budget the
// drain takes at least the time the token bucket mandates.
func TestSchedulerGovernorPacesRepairs(t *testing.T) {
	src := newFakeSource(4, 5)
	src.bytesPer = 1000
	for g := uint64(0); g < 4; g++ {
		src.damage(g, 3)
	}
	// 10 kB/s with 1 kB burst: 4 repairs x 1000 B = 4000 B, first
	// 1000 free, remaining 3000 need >= 300ms.
	s, err := NewScheduler(Options{Source: src, Bandwidth: 10_000, Burst: 1000, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := newTestContext(t)
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("drain finished in %v, governor should have held it ~300ms", elapsed)
	}
	if got := s.Stats().BytesRepaired.Load(); got != 4000 {
		t.Fatalf("BytesRepaired = %d, want 4000", got)
	}
}

// TestWaitIdleSemantics: WaitIdle returns promptly on an idle
// scheduler, waits out submitted work, honors its context, and
// returns immediately after Stop.
func TestWaitIdleSemantics(t *testing.T) {
	src := newFakeSource(4, 5)
	s, err := NewScheduler(Options{Source: src, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := newTestContext(t)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("idle scheduler: %v", err)
	}
	// A kick with a damaged group queues and drains work; WaitIdle
	// must observe the full cycle.
	src.damage(1, 2)
	s.Kick()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("after kick: %v", err)
	}
	if got := src.repairOrder(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("repair order = %v, want [1]", got)
	}
	// An expired context surfaces its error instead of hanging.
	expired, ecancel := context.WithCancel(context.Background())
	ecancel()
	src.damage(3, 1)
	s.Kick()
	if err := s.WaitIdle(expired); err == nil {
		// The race between the worker finishing and the canceled ctx
		// is legal either way; only a hang would be a bug.
		t.Log("scheduler drained before the canceled context was observed")
	}
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("stopped scheduler: %v", err)
	}
}

// Package repair implements the pool-wide background repair and
// rebalance scheduler: a priority queue of damaged stripe groups
// ordered by survivor count (a group one shard from data loss repairs
// before a group missing one of many), fed by failure reports from the
// volume layer and a periodic inspection sweep, drained through a
// token-bucket bandwidth governor so background reconstruction cannot
// starve foreground traffic. Pool membership changes additionally
// enqueue low-priority rebalance moves that walk each group back to
// its rendezvous-hash ideal placement.
package repair

import "container/heap"

// Item is one queued unit of background work: bring a stripe group
// back to full health (and, for rebalance moves, back to its ideal
// placement).
type Item struct {
	// Group identifies the stripe group.
	Group uint64
	// Survivors is the number of healthy shards backing the group at
	// report time; lower values drain first. A re-report of the same
	// group overwrites it (damage estimates go stale in both
	// directions).
	Survivors int
	// Rebalance marks a placement move rather than damage repair.
	// Rebalance items carry Survivors equal to the full shard count,
	// so they naturally sort behind every real repair.
	Rebalance bool

	seq   uint64 // FIFO tiebreak among equal survivor counts
	index int    // heap position, maintained by the container
}

// Queue is a priority queue of damaged groups, least survivors first,
// FIFO among equals. One entry per group: reporting a queued group
// re-prioritizes it in place (decrease- or increase-key) instead of
// duplicating it. Not safe for concurrent use; the scheduler
// serializes access.
type Queue struct {
	h       itemHeap
	byGroup map[uint64]*Item
	seq     uint64
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	return &Queue{byGroup: make(map[uint64]*Item)}
}

// Len returns the number of queued groups.
func (q *Queue) Len() int { return len(q.h) }

// Report enqueues a group with the given survivor count, or updates
// the count (and re-sifts) if the group is already queued. The FIFO
// rank is assigned at first enqueue and kept across re-reports, so a
// re-prioritized group does not jump ahead of equally damaged groups
// that were reported before it.
func (q *Queue) Report(group uint64, survivors int, rebalance bool) {
	if it, ok := q.byGroup[group]; ok {
		// A damage report outranks a pending rebalance move for the
		// same group (repairing refreshes placement anyway); the
		// reverse never downgrades.
		if it.Rebalance && !rebalance {
			it.Rebalance = false
		}
		if it.Survivors != survivors {
			it.Survivors = survivors
			heap.Fix(&q.h, it.index)
		}
		return
	}
	q.seq++
	it := &Item{Group: group, Survivors: survivors, Rebalance: rebalance, seq: q.seq}
	q.byGroup[group] = it
	heap.Push(&q.h, it)
}

// Pop removes and returns the most urgent item.
func (q *Queue) Pop() (Item, bool) {
	if len(q.h) == 0 {
		return Item{}, false
	}
	it := heap.Pop(&q.h).(*Item)
	delete(q.byGroup, it.Group)
	return *it, true
}

// Peek returns the most urgent item without removing it.
func (q *Queue) Peek() (Item, bool) {
	if len(q.h) == 0 {
		return Item{}, false
	}
	return *q.h[0], true
}

// Remove drops a group from the queue (it was found healthy again).
func (q *Queue) Remove(group uint64) bool {
	it, ok := q.byGroup[group]
	if !ok {
		return false
	}
	heap.Remove(&q.h, it.index)
	delete(q.byGroup, group)
	return true
}

// Contains reports whether a group is queued.
func (q *Queue) Contains(group uint64) bool {
	_, ok := q.byGroup[group]
	return ok
}

// --- container/heap plumbing -------------------------------------------------

type itemHeap []*Item

func (h itemHeap) Len() int { return len(h) }

func (h itemHeap) Less(i, j int) bool {
	if h[i].Survivors != h[j].Survivors {
		return h[i].Survivors < h[j].Survivors
	}
	return h[i].seq < h[j].seq
}

func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *itemHeap) Push(x any) {
	it := x.(*Item)
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

package placement

import (
	"fmt"
	"sort"
	"sync"

	"ecstore/internal/obs"
)

// Pool is a mutable, epoch-versioned node membership. Every
// membership change (add or remove) bumps the epoch; consumers cache
// group→nodes resolutions tagged with the epoch and re-resolve only
// when it moves, so the steady-state routing path never touches the
// pool lock for placement math.
type Pool struct {
	mu    sync.RWMutex
	epoch uint64
	nodes map[string]Node

	resolves *obs.Counter
	latency  *obs.Histogram
}

// NewPool builds a pool from the initial membership. IDs must be
// non-empty and unique.
func NewPool(nodes ...Node) (*Pool, error) {
	p := &Pool{nodes: make(map[string]Node, len(nodes))}
	for _, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("placement: node with empty ID")
		}
		if _, dup := p.nodes[n.ID]; dup {
			return nil, fmt.Errorf("placement: duplicate node ID %q", n.ID)
		}
		p.nodes[n.ID] = n
	}
	return p, nil
}

// Instrument registers the pool's metrics: resolve count and latency,
// plus live epoch and size gauges. Safe to call on an already-used
// pool; a nil registry is a no-op.
func (p *Pool) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.mu.Lock()
	p.resolves = reg.Counter("placement.resolves")
	p.latency = reg.Histogram("placement.resolve_latency")
	p.mu.Unlock()
	reg.Func("placement.epoch", func() int64 { return int64(p.Epoch()) })
	reg.Func("placement.pool_size", func() int64 { return int64(p.Size()) })
}

// Epoch returns the current membership version. It starts at 0 and
// increases by one per Add or Remove.
func (p *Pool) Epoch() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.epoch
}

// Size returns the current number of members.
func (p *Pool) Size() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.nodes)
}

// Nodes returns the current membership sorted by ID.
func (p *Pool) Nodes() []Node {
	p.mu.RLock()
	out := make([]Node, 0, len(p.nodes))
	for _, n := range p.nodes {
		out = append(out, n)
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Add introduces a node and bumps the epoch.
func (p *Pool) Add(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("placement: node with empty ID")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.nodes[n.ID]; dup {
		return fmt.Errorf("placement: node %q already in pool", n.ID)
	}
	p.nodes[n.ID] = n
	p.epoch++
	return nil
}

// Remove drops a node (failure or drain) and bumps the epoch. Removing
// an unknown node is an error so concurrent failure reports can tell
// who actually retired it.
func (p *Pool) Remove(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.nodes[id]; !ok {
		return fmt.Errorf("placement: node %q not in pool", id)
	}
	delete(p.nodes, id)
	p.epoch++
	return nil
}

// Place resolves the n distinct nodes serving a group under the
// current membership, best-ranked first, together with the epoch the
// resolution is valid for. Callers cache the result and re-resolve
// when Epoch() moves past the returned value.
func (p *Pool) Place(group uint64, n int) ([]Node, uint64, error) {
	p.mu.RLock()
	resolves, latency := p.resolves, p.latency
	epoch := p.epoch
	nodes := make([]Node, 0, len(p.nodes))
	for _, node := range p.nodes {
		nodes = append(nodes, node)
	}
	p.mu.RUnlock()
	sp := obs.StartSpan(latency)
	assigned, err := Assign(group, nodes, n)
	if err != nil {
		return nil, epoch, err
	}
	resolves.Inc()
	sp.End()
	return assigned, epoch, nil
}

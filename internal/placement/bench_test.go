package placement

import (
	"fmt"
	"testing"
)

// BenchmarkPlace measures one group→nodes resolution over pools of
// production-ish sizes. This cost is paid only on cache misses (first
// touch of a group, or an epoch bump), but it bounds how fast a volume
// can warm up G groups.
func BenchmarkPlace(b *testing.B) {
	for _, size := range []int{8, 64, 256} {
		nodes := make([]Node, size)
		for i := range nodes {
			nodes[i] = Node{ID: fmt.Sprintf("node-%03d", i)}
		}
		p, err := NewPool(nodes...)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pool=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Place(uint64(i), 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

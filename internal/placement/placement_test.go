package placement

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func pool(t *testing.T, ids ...string) *Pool {
	t.Helper()
	nodes := make([]Node, len(ids))
	for i, id := range ids {
		nodes[i] = Node{ID: id}
	}
	p, err := NewPool(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func ids(nodes []Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	return out
}

func idSet(nodes []Node) map[string]bool {
	out := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		out[n.ID] = true
	}
	return out
}

// randomNodes builds a pool of `size` nodes with IDs drawn from a
// large namespace so different seeds give different memberships.
func randomNodes(rng *rand.Rand, size int) []Node {
	seen := make(map[string]bool)
	out := make([]Node, 0, size)
	for len(out) < size {
		id := fmt.Sprintf("node-%04d", rng.Intn(10000))
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, Node{ID: id})
	}
	return out
}

// Determinism: placement is a pure function of (membership, group) —
// two independently built pools with the same membership agree, and
// insertion order is irrelevant. Golden values pin the mapping across
// processes and releases: a hash change would silently orphan every
// block written under the old mapping.
func TestPlaceDeterministic(t *testing.T) {
	a := pool(t, "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7")
	b := pool(t, "s7", "s3", "s5", "s1", "s6", "s0", "s2", "s4")
	for group := uint64(0); group < 64; group++ {
		ga, _, err := a.Place(group, 5)
		if err != nil {
			t.Fatal(err)
		}
		gb, _, err := b.Place(group, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids(ga), ids(gb)) {
			t.Fatalf("group %d: %v vs %v", group, ids(ga), ids(gb))
		}
	}

	golden := map[uint64][]string{
		0: {"s4", "s1", "s0", "s7", "s5"},
		1: {"s6", "s5", "s3", "s1", "s2"},
		2: {"s0", "s4", "s5", "s6", "s3"},
	}
	for group, want := range golden {
		got, _, err := a.Place(group, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids(got), want) {
			t.Fatalf("golden drift: group %d placed on %v, recorded %v — "+
				"the hash or ranking changed, which relocates existing data", group, ids(got), want)
		}
	}
}

// Distinctness: every group gets n distinct nodes, over random pools
// and group IDs (quick-check style).
func TestPlaceDistinctNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		size := 5 + rng.Intn(60)
		n := 2 + rng.Intn(5)
		if n > size {
			n = size
		}
		nodes := randomNodes(rng, size)
		for i := 0; i < 20; i++ {
			group := rng.Uint64()
			got, err := Assign(group, nodes, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("got %d nodes, want %d", len(got), n)
			}
			if len(idSet(got)) != n {
				t.Fatalf("group %d: duplicate nodes in %v", group, ids(got))
			}
		}
	}
}

func TestAssignRejectsDegenerateInputs(t *testing.T) {
	nodes := []Node{{ID: "a"}, {ID: "b"}}
	if _, err := Assign(1, nodes, 3); err == nil {
		t.Fatal("want error for pool smaller than n")
	}
	if _, err := Assign(1, nodes, 0); err == nil {
		t.Fatal("want error for n < 1")
	}
	if _, err := Assign(1, []Node{{ID: "a"}, {ID: "a"}}, 1); err == nil {
		t.Fatal("want error for duplicate IDs")
	}
	if _, err := Assign(1, []Node{{ID: ""}}, 1); err == nil {
		t.Fatal("want error for empty ID")
	}
}

// Weight proportionality: a node with weight w receives ~w times the
// slot share of a weight-1 node. Tolerances are loose — this is a law
// of large numbers check, not a statistical test.
func TestPlaceWeightProportionality(t *testing.T) {
	// The pool must be large relative to n for proportionality to be
	// observable: with few nodes a heavy node lands in nearly every
	// group's top-n and the ratio saturates.
	const w1Count = 60
	nodes := make([]Node, w1Count)
	for i := range nodes {
		nodes[i] = Node{ID: fmt.Sprintf("w1-%d", i)}
	}
	nodes = append(nodes, Node{ID: "w3", Weight: 3})

	const groups = 6000
	counts := make(map[string]int)
	for g := uint64(0); g < groups; g++ {
		placed, err := Assign(g, nodes, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range placed {
			counts[n.ID]++
		}
	}
	var w1Total int
	for i := 0; i < w1Count; i++ {
		w1Total += counts[fmt.Sprintf("w1-%d", i)]
	}
	w1Avg := float64(w1Total) / w1Count
	ratio := float64(counts["w3"]) / w1Avg
	// Sampling without replacement compresses the ratio below the
	// nominal 3x (a heavy node can occupy only one slot per group);
	// the analytical expectation for this configuration is ~2.8.
	if ratio < 2.3 || ratio > 3.3 {
		t.Fatalf("weight-3 node got %d slots vs weight-1 average %.0f (ratio %.2f), want ~3x",
			counts["w3"], w1Avg, ratio)
	}
}

// Minimal movement on removal: groups that were not using the removed
// node keep their exact assignment (same nodes, same order); groups
// that were lose only the removed node and gain exactly one.
func TestMinimalMovementOnRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nodes := randomNodes(rng, 10+rng.Intn(30))
		victim := nodes[rng.Intn(len(nodes))].ID
		survivors := make([]Node, 0, len(nodes)-1)
		for _, n := range nodes {
			if n.ID != victim {
				survivors = append(survivors, n)
			}
		}
		for g := uint64(0); g < 200; g++ {
			before, err := Assign(g, nodes, 5)
			if err != nil {
				t.Fatal(err)
			}
			after, err := Assign(g, survivors, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !idSet(before)[victim] {
				if !reflect.DeepEqual(ids(before), ids(after)) {
					t.Fatalf("group %d did not use %s but moved: %v -> %v",
						g, victim, ids(before), ids(after))
				}
				continue
			}
			lost, gained := diff(before, after)
			if len(lost) != 1 || lost[0] != victim || len(gained) != 1 {
				t.Fatalf("group %d: removing %s lost %v gained %v, want exactly {%s} -> {1 new}",
					g, victim, lost, gained, victim)
			}
		}
	}
}

// Minimal movement on addition: a new node takes over only the slots
// it wins; every group either keeps its assignment verbatim or swaps
// exactly one node for the newcomer.
func TestMinimalMovementOnAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nodes := randomNodes(rng, 20)
	grown := append(append([]Node{}, nodes...), Node{ID: "joiner"})
	var moved int
	for g := uint64(0); g < 500; g++ {
		before, err := Assign(g, nodes, 5)
		if err != nil {
			t.Fatal(err)
		}
		after, err := Assign(g, grown, 5)
		if err != nil {
			t.Fatal(err)
		}
		lost, gained := diff(before, after)
		switch {
		case len(lost) == 0 && len(gained) == 0:
		case len(lost) == 1 && len(gained) == 1 && gained[0] == "joiner":
			moved++
		default:
			t.Fatalf("group %d: adding joiner lost %v gained %v", g, lost, gained)
		}
	}
	// The joiner should win roughly 5/21 of 500 group-slots' worth of
	// groups; assert it won some but far from all.
	if moved == 0 || moved > 300 {
		t.Fatalf("joiner took over %d/500 groups, implausible for 1/21 of the weight", moved)
	}
}

func diff(before, after []Node) (lost, gained []string) {
	b, a := idSet(before), idSet(after)
	for id := range b {
		if !a[id] {
			lost = append(lost, id)
		}
	}
	for id := range a {
		if !b[id] {
			gained = append(gained, id)
		}
	}
	return lost, gained
}

func TestPoolEpochAndMembership(t *testing.T) {
	p := pool(t, "a", "b", "c", "d", "e", "f")
	if p.Epoch() != 0 {
		t.Fatalf("fresh pool epoch = %d, want 0", p.Epoch())
	}
	placed, epoch, err := p.Place(42, 5)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 0 || len(placed) != 5 {
		t.Fatalf("Place returned epoch %d, %d nodes", epoch, len(placed))
	}
	if err := p.Add(Node{ID: "g"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 2 {
		t.Fatalf("epoch after add+remove = %d, want 2", p.Epoch())
	}
	if err := p.Remove("a"); err == nil {
		t.Fatal("double remove should error")
	}
	if err := p.Add(Node{ID: "g"}); err == nil {
		t.Fatal("duplicate add should error")
	}
	if got := p.Size(); got != 6 {
		t.Fatalf("size = %d, want 6", got)
	}
	names := ids(p.Nodes())
	want := []string{"b", "c", "d", "e", "f", "g"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Nodes() = %v, want %v", names, want)
	}
	if _, _, err := p.Place(1, 7); err == nil {
		t.Fatal("Place beyond pool size should error")
	}
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(Node{ID: "x"}, Node{ID: "x"}); err == nil {
		t.Fatal("duplicate IDs should error")
	}
	if _, err := NewPool(Node{ID: ""}); err == nil {
		t.Fatal("empty ID should error")
	}
}

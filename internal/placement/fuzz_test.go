package placement

import (
	"bytes"
	"testing"
)

// FuzzKeyEncoding checks the injectivity claim EncodeKey's scoring
// depends on: distinct (group, node) pairs must never hash from the
// same bytes, or two different assignments would collapse onto one
// rendezvous score. (A length-prefix bug or a delimiter-based encoding
// with IDs containing the delimiter are the classic ways this breaks.)
func FuzzKeyEncoding(f *testing.F) {
	f.Add(uint64(0), "", uint64(0), "")
	f.Add(uint64(1), "node-a", uint64(1), "node-b")
	f.Add(uint64(0x0100), "x", uint64(0), "\x00\x00\x00\x00\x00\x00\x01\x00x")
	f.Add(uint64(7), "s1", uint64(7), "s10")
	f.Fuzz(func(t *testing.T, g1 uint64, id1 string, g2 uint64, id2 string) {
		k1 := EncodeKey(g1, id1)
		k2 := EncodeKey(g2, id2)
		same := g1 == g2 && id1 == id2
		if same != bytes.Equal(k1, k2) {
			t.Fatalf("EncodeKey not injective: (%d,%q)->%x vs (%d,%q)->%x",
				g1, id1, k1, g2, id2, k2)
		}
		if len(k1) != 8+len(id1) {
			t.Fatalf("EncodeKey(%d,%q) has length %d, want %d", g1, id1, len(k1), 8+len(id1))
		}
	})
}

// Package placement assigns stripe groups to physical storage nodes
// with weighted rendezvous (highest-random-weight, HRW) hashing.
//
// A single AJX stripe group is defined over exactly n nodes; scaling
// past one group means spreading many groups over a larger pool and
// routing clients to the right n-node subset. Rendezvous hashing gives
// that mapping three properties the volume layer depends on:
//
//   - Determinism: any process that knows the pool membership computes
//     the same group→nodes assignment — no coordination service.
//   - Weighted balance: a node with twice the weight receives (in
//     expectation) twice the share of group slots.
//   - Minimal movement: removing one node relocates only the slots that
//     node held; every other (group, node) pairing is untouched. This
//     is what keeps repair traffic proportional to the failure, not to
//     the pool size (cf. arXiv:1309.0186 on recovery network cost).
//
// Scores use Efraimidis–Spirakis keys: hash the (group, node) pair to
// a uniform u in (0,1) and rank by -ln(u)/weight, smallest first. The
// n best-ranked nodes serve the group, which makes the selection
// exactly a weighted sampling of n nodes without replacement — the
// multi-slot generalization of weighted rendezvous hashing. (The
// classic -weight/ln(u) score is proportional only for the single
// winner; under top-n selection it over-places heavy nodes.)
package placement

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Node is a pool member: a physical storage site that can hold one
// slot of a stripe group.
type Node struct {
	// ID uniquely names the node (an address, a hostname). Required.
	ID string
	// Weight scales the node's share of assignments. Zero means 1.
	Weight float64
}

func (n Node) weight() float64 {
	if n.Weight <= 0 {
		return 1
	}
	return n.Weight
}

// EncodeKey produces the hash input for a (group, node) pair. The
// encoding is injective — distinct pairs never encode equal — because
// the group occupies a fixed-width prefix and the node ID follows
// verbatim. (The CI fuzz target FuzzKeyEncoding exercises exactly this
// property.)
func EncodeKey(group uint64, nodeID string) []byte {
	buf := make([]byte, 8+len(nodeID))
	binary.BigEndian.PutUint64(buf, group)
	copy(buf[8:], nodeID)
	return buf
}

// finalize is a bijective avalanche mixer (the MurmurHash3/splitmix64
// finalizer). FNV-1a alone is too weak here: node IDs in one pool
// typically differ in a few trailing bytes ("host-1".."host-N"), and
// raw FNV maps such near-identical keys to strongly correlated values,
// which collapses the per-group score spread and skews placement.
func finalize(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// score returns the weighted rendezvous score of node for group.
// Lower wins. FNV-1a (plus finalize) is deterministic across processes
// and architectures, unlike hash/maphash.
func score(group uint64, n Node) float64 {
	h := fnv.New64a()
	h.Write(EncodeKey(group, n.ID))
	// Map the top 53 bits to a uniform float in (0,1): the +0.5 keeps
	// u strictly positive so ln(u) is finite.
	u := (float64(finalize(h.Sum64())>>11) + 0.5) / (1 << 53)
	return -math.Log(u) / n.weight()
}

// Rank orders the candidate nodes for a group, best first. The input
// slice is not modified. Ties (possible only through hash collision)
// break by ID so the order stays total and deterministic.
func Rank(group uint64, nodes []Node) []Node {
	type scored struct {
		n Node
		s float64
	}
	ranked := make([]scored, len(nodes))
	for i, n := range nodes {
		ranked[i] = scored{n: n, s: score(group, n)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].s != ranked[j].s {
			return ranked[i].s < ranked[j].s
		}
		return ranked[i].n.ID < ranked[j].n.ID
	})
	out := make([]Node, len(ranked))
	for i, r := range ranked {
		out[i] = r.n
	}
	return out
}

// Assign returns the n distinct nodes serving a group, best-ranked
// first. It fails if the candidate set has fewer than n members or a
// duplicate ID (duplicates would let one physical node hold two slots
// of the same stripe, silently halving the failure budget).
func Assign(group uint64, nodes []Node, n int) ([]Node, error) {
	if n < 1 {
		return nil, fmt.Errorf("placement: need n >= 1, got %d", n)
	}
	seen := make(map[string]struct{}, len(nodes))
	for _, node := range nodes {
		if node.ID == "" {
			return nil, fmt.Errorf("placement: node with empty ID")
		}
		if _, dup := seen[node.ID]; dup {
			return nil, fmt.Errorf("placement: duplicate node ID %q", node.ID)
		}
		seen[node.ID] = struct{}{}
	}
	if len(nodes) < n {
		return nil, fmt.Errorf("placement: pool has %d nodes, group needs %d", len(nodes), n)
	}
	return Rank(group, nodes)[:n], nil
}

package bufpool

import (
	"sync"
	"testing"

	"ecstore/internal/obs"
)

func withDebug(t *testing.T) {
	t.Helper()
	SetDebug(true)
	t.Cleanup(func() { SetDebug(false) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", what)
		}
	}()
	fn()
}

func TestGetPutRoundTrip(t *testing.T) {
	before := Snapshot()
	b := Get(4096)
	if len(b) != 4096 || cap(b) != 4096 {
		t.Fatalf("Get(4096) returned len=%d cap=%d", len(b), cap(b))
	}
	Put(b)
	// The very next Get of the same class should be served from the
	// pool. sync.Pool gives no hard guarantee, but with no GC between
	// Put and Get this holds in practice; tolerate a miss rather than
	// flake, and assert on the counters instead.
	_ = Get(4096)
	after := Snapshot()
	if after.Gets < before.Gets+2 || after.Puts < before.Puts+1 {
		t.Fatalf("counters did not advance: before=%+v after=%+v", before, after)
	}
}

func TestGetZeroLength(t *testing.T) {
	b := Get(0)
	if b == nil || len(b) != 0 {
		t.Fatalf("Get(0) = %#v, want non-nil empty slice", b)
	}
	Put(b) // must be a no-op, not a panic
	if n := Get(-3); n == nil || len(n) != 0 {
		t.Fatalf("Get(-3) = %#v, want non-nil empty slice", n)
	}
}

func TestDoublePutPanicsUnderDebug(t *testing.T) {
	withDebug(t)
	b := Get(512)
	Put(b)
	mustPanic(t, "double Put", func() { Put(b) })
}

func TestWrongSizePutPanicsUnderDebug(t *testing.T) {
	withDebug(t)
	b := Get(1024)
	mustPanic(t, "re-sliced Put", func() { Put(b[:100]) })
}

func TestWrongSizePutCountedInRelease(t *testing.T) {
	SetDebug(false)
	before := Snapshot().WrongSize
	b := Get(256)
	Put(b[:16]) // silently rejected
	if got := Snapshot().WrongSize; got != before+1 {
		t.Fatalf("wrongSize = %d, want %d", got, before+1)
	}
}

func TestPoisonOnPut(t *testing.T) {
	withDebug(t)
	b := Get(64)
	for i := range b {
		b[i] = 0x42
	}
	Put(b)
	// A holder that wrongly kept its reference across Put must see
	// poison, not its old bytes.
	for i, v := range b {
		if v != 0xDB {
			t.Fatalf("b[%d] = %#x after Put, want poison 0xDB", i, v)
		}
	}
}

func TestHitRatePct(t *testing.T) {
	// Only sanity: rate stays within [0, 100] and moves with traffic.
	for i := 0; i < 8; i++ {
		Put(Get(2048))
	}
	if r := HitRatePct(); r < 0 || r > 100 {
		t.Fatalf("HitRatePct() = %d, want 0..100", r)
	}
}

func TestInstrumentIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	Instrument(reg) // second call must not double the Func gauges
	Put(Get(128))
	snap := reg.Snapshot()
	getsAny, ok := snap["bufpool.gets"]
	if !ok {
		t.Fatalf("bufpool.gets missing from snapshot: %v", snap)
	}
	// Func gauges under one name are summed at snapshot time; if
	// Instrument registered twice the reading would be exactly double
	// the true counter.
	var gauge int64
	switch v := getsAny.(type) {
	case int64:
		gauge = v
	case float64:
		gauge = int64(v)
	default:
		t.Fatalf("bufpool.gets has unexpected type %T", getsAny)
	}
	if truth := int64(Snapshot().Gets); gauge != truth {
		t.Fatalf("bufpool.gets gauge = %d, counter = %d (double registration?)", gauge, truth)
	}
	Instrument(nil) // must not panic
}

func TestConcurrentGetPut(t *testing.T) {
	// Hammer one size class from many goroutines; under -race this
	// verifies the pool itself introduces no sharing, and under debug
	// mode that the bookkeeping is consistent.
	withDebug(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := Get(1 << 12)
				for j := range b {
					b[j] = id
				}
				for j := range b {
					if b[j] != id {
						t.Errorf("worker %d observed foreign byte %#x", id, b[j])
						return
					}
				}
				Put(b)
			}
		}(byte(w))
	}
	wg.Wait()
}

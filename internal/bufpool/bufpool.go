// Package bufpool is a size-classed, sync.Pool-backed recycler for the
// block-sized byte buffers that dominate allocation on the data path:
// RPC frame bodies, encoded request payloads, decoded block fields,
// write-back cache copies, and per-write delta scratch.
//
// Ownership discipline is opportunistic: Get hands out a buffer the
// caller owns outright, and Put is an optimisation, never an
// obligation. A buffer that escapes (a reply block returned to the
// application, a copy retained by a cache) is simply never Put and the
// GC reclaims it — forgetting to Put costs an allocation, while a
// wrong Put (a buffer something still references) costs corruption.
// Callers therefore only Put buffers whose lifetime they can see end
// to end; the DESIGN notes list the call sites and their reasoning.
//
// Buffers are classed by exact length, matching how the store works:
// traffic is a handful of fixed sizes (the block size, and each
// message type's frame size for that block size), so exact classes hit
// without the waste or complexity of power-of-two rounding. Get
// returns a buffer with unspecified contents — callers must overwrite
// it fully before reading.
//
// SetDebug(true) (enabled by tests) adds misuse detection: buffers are
// poisoned on Put so use-after-Put reads garbage instead of stale
// plausible data, double-Puts and Puts of re-sliced buffers panic.
package bufpool

import (
	"sync"
	"sync/atomic"

	"ecstore/internal/obs"
)

var (
	classes sync.Map // int (exact length) -> *sync.Pool of *[]byte

	gets      atomic.Uint64 // Get calls (excluding zero-length)
	hits      atomic.Uint64 // Gets served from a pool
	puts      atomic.Uint64 // buffers accepted back
	wrongSize atomic.Uint64 // Puts rejected because len != cap

	debug atomic.Bool
	dbgMu sync.Mutex
	// dbgPooled tracks the base pointer of every buffer currently
	// sitting in a pool, to catch double-Puts. Debug mode only.
	dbgPooled map[*byte]struct{}
)

// zeroLen is what Get(0) returns: a non-nil empty slice, so callers
// that distinguish nil from empty (wire decoding does) see the same
// shape make([]byte, 0) would give them.
var zeroLen = make([]byte, 0)

// Get returns a buffer of length n with unspecified contents. The
// caller owns it; returning it via Put is optional.
func Get(n int) []byte {
	if n <= 0 {
		return zeroLen
	}
	gets.Add(1)
	if p, ok := classes.Load(n); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			hits.Add(1)
			b := *(v.(*[]byte))
			if debug.Load() {
				dbgForget(&b[0])
			}
			return b
		}
	}
	return make([]byte, n)
}

// Put returns a buffer to its size class. b must be exactly as it came
// from Get: re-sliced buffers (len != cap) are rejected, because a
// future Get keyed on the shorter length would hand out a buffer whose
// tail another holder may still reference. Put(nil) and zero-length
// Puts are no-ops.
func Put(b []byte) {
	n := len(b)
	if n == 0 {
		return
	}
	if n != cap(b) {
		wrongSize.Add(1)
		if debug.Load() {
			panic("bufpool: Put of re-sliced buffer (len != cap)")
		}
		return
	}
	if debug.Load() {
		dbgCheckPut(&b[0])
		poison(b)
	}
	puts.Add(1)
	p, ok := classes.Load(n)
	if !ok {
		p, _ = classes.LoadOrStore(n, &sync.Pool{})
	}
	p.(*sync.Pool).Put(&b)
}

// poison overwrites a buffer on its way into the pool so that any
// holder of a stale reference reads obvious garbage rather than the
// previous (plausible-looking) contents.
func poison(b []byte) {
	for i := range b {
		b[i] = 0xDB
	}
}

func dbgCheckPut(base *byte) {
	dbgMu.Lock()
	defer dbgMu.Unlock()
	if dbgPooled == nil {
		dbgPooled = make(map[*byte]struct{})
	}
	if _, dup := dbgPooled[base]; dup {
		panic("bufpool: double Put of the same buffer")
	}
	dbgPooled[base] = struct{}{}
}

func dbgForget(base *byte) {
	dbgMu.Lock()
	delete(dbgPooled, base)
	dbgMu.Unlock()
}

// SetDebug toggles misuse detection (poison-on-Put, double-Put and
// re-sliced-Put panics). Tests enable it; production builds leave it
// off — the checks touch every byte on Put.
//
// Note sync.Pool may drop poisoned buffers at any GC, so debug mode
// detects misuse probabilistically, not exhaustively.
func SetDebug(on bool) {
	debug.Store(on)
	if !on {
		dbgMu.Lock()
		dbgPooled = nil
		dbgMu.Unlock()
	}
}

// Stats is a snapshot of pool effectiveness counters.
type Stats struct {
	Gets      uint64 // Get calls for n > 0
	Hits      uint64 // Gets served without allocating
	Puts      uint64 // buffers accepted back into a pool
	WrongSize uint64 // Puts rejected because len != cap
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	return Stats{
		Gets:      gets.Load(),
		Hits:      hits.Load(),
		Puts:      puts.Load(),
		WrongSize: wrongSize.Load(),
	}
}

// HitRatePct returns the all-time pool hit rate in percent (0 when no
// Gets have happened yet).
func HitRatePct() int64 {
	g := gets.Load()
	if g == 0 {
		return 0
	}
	return int64(hits.Load() * 100 / g)
}

// instrumented remembers which registries already carry the bufpool
// gauges. Func gauges registered twice under one name are *summed* at
// snapshot time, so Instrument must be idempotent per registry.
var instrumented sync.Map // *obs.Registry -> struct{}

// Instrument registers the pool's gauges on reg: bufpool.gets,
// bufpool.hits, bufpool.puts, bufpool.wrong_size and
// bufpool.hit_rate_pct. Safe to call more than once per registry and
// with a nil registry.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	if _, dup := instrumented.LoadOrStore(reg, struct{}{}); dup {
		return
	}
	reg.Func("bufpool.gets", func() int64 { return int64(gets.Load()) })
	reg.Func("bufpool.hits", func() int64 { return int64(hits.Load()) })
	reg.Func("bufpool.puts", func() int64 { return int64(puts.Load()) })
	reg.Func("bufpool.wrong_size", func() int64 { return int64(wrongSize.Load()) })
	reg.Func("bufpool.hit_rate_pct", HitRatePct)
}

// Package smallwrite is the write half of the small-I/O tier: it
// absorbs sub-block writes into a parity-logged staging segment inside
// the erasure-coded store itself, so a 128-byte write costs its share
// of one group-committed, block-aligned append instead of a full
// swap+deltas round on its home block.
//
// Mechanics:
//
//   - Writers enqueue records and elect a commit leader (first waiter
//     wins): the leader encodes every pending record into one
//     checksummed batch, appends it to the staging segment through a
//     dedicated bulk engine, and wakes the group. No background
//     goroutines; latency is one staging append shared by the batch.
//   - Committed records live in an in-memory overlay keyed by home
//     block address; reads patch them over base-store content in
//     sequence order, so acknowledged bytes are visible immediately.
//   - When the segment fills (or on an explicit Flush barrier) the
//     tier merges the overlay into home blocks — one read-modify-write
//     per dirty block under a striped per-block lock — then resets the
//     segment. Direct full-block writes to a dirty address supersede
//     the staged records they overwrite and append a durable supersede
//     tombstone to the segment before they are acknowledged, so a
//     post-crash Salvage cannot replay the overwritten records over
//     the newer full-block content.
//   - The staging segment is erasure-coded like everything else, so an
//     acknowledged small write already has EC durability. After a
//     client crash, Salvage replays whole batches from the segment
//     (honoring supersede tombstones) before the tier serves traffic.
//
// The tier sits below the read cache and above the bulk engine; the
// facade's tier layer (internal/tier) wires the three together.
package smallwrite

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"

	"ecstore/internal/bulk"
	"ecstore/internal/obs"
)

// ErrClosed reports a write against a closed tier.
var ErrClosed = errors.New("smallwrite: tier closed")

// ErrCorruptSegment reports a salvage scan that found a batch header
// with a valid magic but inconsistent framing or checksum.
var ErrCorruptSegment = errors.New("smallwrite: corrupt staging segment")

const (
	batchMagic  = 0x53575432 // "SWT2"
	headerSize  = 24         // magic u32, gen u64, count u32, payload u32, crc u32
	recHdrSize  = 24         // addr u64, seq u64, off u32, len u32
	nAddrLocks  = 64
	defMaxBatch = 256

	// supersedeOff in a record's off field marks a supersede tombstone:
	// a direct full-block write durably overwrote every record for addr
	// with sequence below the value in the seq field. Salvage must not
	// replay those records over the direct write's content.
	supersedeOff = ^uint32(0)
)

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Tier.
type Options struct {
	// Base is the erasure-coded store the tier stages into and flushes
	// onto. Required.
	Base bulk.Target
	// StagingBase is the block address of the staging segment's first
	// block. The segment must not overlap addresses served to callers.
	StagingBase uint64
	// StagingBlocks is the segment length in blocks. Required >= 4.
	StagingBlocks uint64
	// MaxBatch bounds the records one group commit may carry. Default
	// 256.
	MaxBatch int
	// MaxInFlight is the staging-append engine's window in stripes.
	// Zero takes the bulk engine default.
	MaxInFlight int
	// OnApply, when non-nil, is called with each home-block address the
	// flusher has merged staged bytes into (while the block's tier lock
	// is held). The tier layer uses it to invalidate the read cache.
	OnApply func(addr uint64)
	// Obs receives smallwrite.* metrics; nil disables them.
	Obs *obs.Registry
}

// Stats counts tier events, readable concurrently.
type Stats struct {
	Writes           atomic.Uint64 // accepted sub-block writes
	Commits          atomic.Uint64 // group commits (batches appended)
	CommitRecords    atomic.Uint64 // records across all commits
	CommitBlocks     atomic.Uint64 // staging blocks consumed
	Flushes          atomic.Uint64 // full overlay merges (explicit or segment-full)
	SegmentFullFlush atomic.Uint64 // flushes forced by a full segment
	FlushedBlocks    atomic.Uint64 // home blocks rewritten by flushes
	PatchedReads     atomic.Uint64 // reads that had staged bytes applied
	Supersedes       atomic.Uint64 // staged records dropped under direct writes
	SupersedeMarks   atomic.Uint64 // durable supersede tombstones appended
	Salvaged         atomic.Uint64 // records replayed from the segment
}

type record struct {
	addr uint64
	off  int
	data []byte
	seq  uint64
	// marker records are durable supersede tombstones: bound is the
	// sequence below which addr's earlier segment records are void.
	// They ride group commits but never enter the overlay.
	marker bool
	bound  uint64
	done   bool
	err    error
}

// Tier is a group-committed small-write stage. All methods are safe
// for concurrent use.
type Tier struct {
	base    bulk.Target
	eng     *bulk.Engine
	bs      int
	sBase   uint64
	sBlocks uint64
	maxRecs int
	onApply func(uint64)

	// Striped per-home-block locks serialize flush RMW against direct
	// full-block writes. Lock order everywhere: addr lock before mu.
	locks [nAddrLocks]sync.Mutex

	mu      sync.Mutex
	cond    *sync.Cond
	seq     uint64
	pending []*record
	overlay map[uint64][]*record
	// epochFlushed marks addresses whose records a flush already merged
	// into the base store while the segment has not been reset yet: a
	// direct write to such an address still needs a durable supersede
	// marker (the merged records are still in the segment and a
	// post-crash Salvage would replay them over the direct write).
	epochFlushed map[uint64]struct{}
	// busy marks a leader commit or a flush in progress; cursor and gen
	// are only touched while it is held.
	busy        bool
	closed      bool
	cursor      uint64 // staging blocks consumed since last reset
	gen         uint64
	liveBytes   atomic.Int64
	liveRecords atomic.Int64

	stats Stats
}

// New validates the options and returns a Tier.
func New(o Options) (*Tier, error) {
	if o.Base == nil {
		return nil, errors.New("smallwrite: Options.Base is required")
	}
	if o.StagingBlocks < 4 {
		return nil, fmt.Errorf("smallwrite: StagingBlocks must be >= 4, got %d", o.StagingBlocks)
	}
	if cap := o.Base.Capacity(); cap != 0 && o.StagingBase+o.StagingBlocks > cap {
		return nil, fmt.Errorf("smallwrite: staging extent [%d,%d) beyond capacity %d",
			o.StagingBase, o.StagingBase+o.StagingBlocks, cap)
	}
	maxRecs := o.MaxBatch
	if maxRecs <= 0 {
		maxRecs = defMaxBatch
	}
	t := &Tier{
		base:         o.Base,
		eng:          bulk.New(o.Base, bulk.Options{MaxInFlight: o.MaxInFlight}),
		bs:           o.Base.BlockSize(),
		sBase:        o.StagingBase,
		sBlocks:      o.StagingBlocks,
		maxRecs:      maxRecs,
		onApply:      o.OnApply,
		overlay:      make(map[uint64][]*record),
		epochFlushed: make(map[uint64]struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	if reg := o.Obs; reg != nil {
		reg.Func("smallwrite.writes", func() int64 { return int64(t.stats.Writes.Load()) })
		reg.Func("smallwrite.commits", func() int64 { return int64(t.stats.Commits.Load()) })
		reg.Func("smallwrite.commit_records", func() int64 { return int64(t.stats.CommitRecords.Load()) })
		reg.Func("smallwrite.commit_blocks", func() int64 { return int64(t.stats.CommitBlocks.Load()) })
		reg.Func("smallwrite.flushes", func() int64 { return int64(t.stats.Flushes.Load()) })
		reg.Func("smallwrite.segment_full_flushes", func() int64 { return int64(t.stats.SegmentFullFlush.Load()) })
		reg.Func("smallwrite.flushed_blocks", func() int64 { return int64(t.stats.FlushedBlocks.Load()) })
		reg.Func("smallwrite.patched_reads", func() int64 { return int64(t.stats.PatchedReads.Load()) })
		reg.Func("smallwrite.supersedes", func() int64 { return int64(t.stats.Supersedes.Load()) })
		reg.Func("smallwrite.supersede_marks", func() int64 { return int64(t.stats.SupersedeMarks.Load()) })
		reg.Func("smallwrite.salvaged", func() int64 { return int64(t.stats.Salvaged.Load()) })
		reg.Func("smallwrite.staged_bytes", t.liveBytes.Load)
		reg.Func("smallwrite.staged_records", t.liveRecords.Load)
	}
	return t, nil
}

// Stats exposes the tier's event counters.
func (t *Tier) Stats() *Stats { return &t.stats }

// StagedRecords returns the number of committed-but-unflushed records.
func (t *Tier) StagedRecords() int { return int(t.liveRecords.Load()) }

// StagedBytes returns the payload bytes of committed-but-unflushed
// records.
func (t *Tier) StagedBytes() int64 { return t.liveBytes.Load() }

func (t *Tier) lockIdx(addr uint64) int {
	return int((addr * 0x9e3779b97f4a7c15) >> 58 & (nAddrLocks - 1))
}

// LockAddrs takes the tier locks covering the given home-block
// addresses (deduplicated, in index order — safe against concurrent
// multi-address holders) and returns a sequence snapshot: staged
// records with seq below it are the ones a direct write performed
// under this lock will supersede. Callers must invoke unlock exactly
// once.
func (t *Tier) LockAddrs(addrs ...uint64) (seq uint64, unlock func()) {
	idxSet := make(map[int]struct{}, len(addrs))
	for _, a := range addrs {
		idxSet[t.lockIdx(a)] = struct{}{}
	}
	idxs := make([]int, 0, len(idxSet))
	for i := range idxSet {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		t.locks[i].Lock()
	}
	t.mu.Lock()
	t.seq++
	seq = t.seq
	t.mu.Unlock()
	return seq, func() {
		for i := len(idxs) - 1; i >= 0; i-- {
			t.locks[idxs[i]].Unlock()
		}
	}
}

// Supersede drops staged records for addr with sequence below
// beforeSeq (a LockAddrs snapshot): a direct full-block write that
// succeeded under the tier lock has durably overwritten them. Must be
// called while holding the covering tier lock, and only after the
// direct write SUCCEEDED — a failed write leaves the staged records as
// the freshest acknowledged content.
//
// The in-memory drop alone is not crash-safe: the dropped records are
// still in the durable staging segment, and a post-crash Salvage would
// replay their stale bytes over the direct write. Supersede reports
// whether such records exist (dropped now, or merged by a flush whose
// segment reset has not happened yet); when it returns true the caller
// must append a durable supersede marker with SupersedeDurable — after
// releasing the tier locks — before acknowledging the direct write.
func (t *Tier) Supersede(addr uint64, beforeSeq uint64) (needMark bool) {
	t.mu.Lock()
	recs := t.overlay[addr]
	kept := recs[:0]
	dropped := 0
	for _, r := range recs {
		if r.seq < beforeSeq {
			t.liveBytes.Add(-int64(len(r.data)))
			t.liveRecords.Add(-1)
			dropped++
		} else {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(t.overlay, addr)
	} else {
		t.overlay[addr] = kept
	}
	_, flushed := t.epochFlushed[addr]
	t.mu.Unlock()
	if dropped > 0 {
		t.stats.Supersedes.Add(uint64(dropped))
	}
	return dropped > 0 || flushed
}

// SupersedeMark identifies staged records a completed direct write
// overwrote: those for Addr with sequence below BeforeSeq (the
// LockAddrs snapshot the write ran under).
type SupersedeMark struct {
	Addr      uint64
	BeforeSeq uint64
}

// SupersedeDurable appends supersede tombstones to the staging segment
// (riding a group commit) so a post-crash Salvage does not replay the
// superseded records over the direct writes' content. Call it after
// releasing the tier locks taken for the direct write — a segment-full
// flush inside the append acquires them — and before acknowledging the
// write to the caller.
func (t *Tier) SupersedeDurable(ctx context.Context, marks []SupersedeMark) error {
	if len(marks) == 0 {
		return nil
	}
	recs := make([]*record, len(marks))
	for i, m := range marks {
		recs[i] = &record{addr: m.Addr, marker: true, bound: m.BeforeSeq}
	}
	if err := t.stage(ctx, recs); err != nil {
		return err
	}
	t.stats.SupersedeMarks.Add(uint64(len(marks)))
	return nil
}

// HasStaged reports whether addr has committed-but-unflushed bytes.
func (t *Tier) HasStaged(addr uint64) bool {
	t.mu.Lock()
	_, ok := t.overlay[addr]
	t.mu.Unlock()
	return ok
}

// Snapshot is a point-in-time copy of one address's staged records.
// Readers take it BEFORE issuing the base-store read and Apply it over
// the result: a concurrent flush may merge the records into the base
// block and drop them from the overlay mid-read, and a read that
// fetched pre-merge content but patched post-drop would silently lose
// acknowledged bytes. Because the flusher writes the merged block
// before dropping records, applying a snapshot over post-merge content
// just rewrites identical bytes.
type Snapshot struct {
	recs []*record
}

// Snapshot captures addr's staged records as they are now.
func (t *Tier) Snapshot(addr uint64) Snapshot {
	t.mu.Lock()
	recs := append([]*record(nil), t.overlay[addr]...)
	t.mu.Unlock()
	return Snapshot{recs: recs}
}

// Apply patches the snapshot's records onto blk in sequence order and
// reports whether anything was applied.
func (s Snapshot) Apply(blk []byte) bool {
	applied := false
	for _, r := range s.recs {
		if r.off+len(r.data) <= len(blk) {
			copy(blk[r.off:], r.data)
			applied = true
		}
	}
	return applied
}

// Patch applies the staged records for addr onto blk (base-store
// content) in sequence order and reports whether anything was applied.
func (t *Tier) Patch(addr uint64, blk []byte) bool {
	t.mu.Lock()
	recs := t.overlay[addr]
	if len(recs) == 0 {
		t.mu.Unlock()
		return false
	}
	for _, r := range recs {
		if r.off+len(r.data) <= len(blk) {
			copy(blk[r.off:], r.data)
		}
	}
	t.mu.Unlock()
	t.stats.PatchedReads.Add(1)
	return true
}

// Write stages a sub-block write of data at byte offset off within
// home block addr. It returns once the record is durably appended to
// the staging segment (riding a group commit shared with concurrent
// writers). The commit IO runs with cancellation stripped from ctx so
// one canceled writer cannot fail a batch other writers are riding;
// retry budgets below still bound it.
func (t *Tier) Write(ctx context.Context, addr uint64, off int, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if off < 0 || off+len(data) > t.bs {
		return fmt.Errorf("smallwrite: record [%d,%d) outside block of %d bytes", off, off+len(data), t.bs)
	}
	if addr >= t.sBase && addr < t.sBase+t.sBlocks {
		return fmt.Errorf("smallwrite: address %d lies in the staging extent", addr)
	}
	if cap := t.base.Capacity(); cap != 0 && addr >= cap {
		return fmt.Errorf("smallwrite: address %d beyond capacity %d: %w", addr, cap, bulk.ErrOutOfRange)
	}
	rec := &record{addr: addr, off: off, data: append([]byte(nil), data...)}
	if err := t.stage(ctx, []*record{rec}); err != nil {
		return err
	}
	t.stats.Writes.Add(1)
	return nil
}

// stage enqueues recs (contiguously, in order) and rides the group
// commit until all of them are durably appended. Batches consume the
// pending queue as leading runs, so once the last of recs is done the
// earlier ones are too.
func (t *Tier) stage(ctx context.Context, recs []*record) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	for _, r := range recs {
		t.seq++
		r.seq = t.seq
		t.pending = append(t.pending, r)
	}
	last := recs[len(recs)-1]
	for !last.done {
		if t.busy {
			t.cond.Wait()
			continue
		}
		// Become the commit leader for everything pending.
		t.busy = true
		batch := t.takeBatchLocked()
		t.mu.Unlock()

		err := t.commit(ctx, batch)

		t.mu.Lock()
		for _, r := range batch {
			r.done = true
			r.err = err
			if err == nil && !r.marker {
				t.overlay[r.addr] = append(t.overlay[r.addr], r)
				t.liveBytes.Add(int64(len(r.data)))
				t.liveRecords.Add(1)
			}
		}
		t.busy = false
		t.cond.Broadcast()
	}
	var err error
	for _, r := range recs {
		if r.err != nil {
			err = r.err
			break
		}
	}
	t.mu.Unlock()
	return err
}

// takeBatchLocked removes the leading run of pending records that fits
// one batch. Caller holds mu.
func (t *Tier) takeBatchLocked() []*record {
	budget := int(t.sBlocks) * t.bs
	size := headerSize
	n := 0
	for _, r := range t.pending {
		sz := recHdrSize + len(r.data)
		if n >= t.maxRecs || (n > 0 && size+sz > budget) {
			break
		}
		size += sz
		n++
	}
	batch := t.pending[:n:n]
	t.pending = append([]*record(nil), t.pending[n:]...)
	return batch
}

// commit encodes and appends one batch. Caller holds busy (not mu).
func (t *Tier) commit(ctx context.Context, batch []*record) error {
	if len(batch) == 0 {
		return nil
	}
	payload := 0
	for _, r := range batch {
		payload += recHdrSize + len(r.data)
	}
	need := uint64((headerSize + payload + t.bs - 1) / t.bs)
	if t.cursor+need > t.sBlocks {
		t.stats.SegmentFullFlush.Add(1)
		if err := t.flushHeld(ctx); err != nil {
			return fmt.Errorf("smallwrite: segment-full flush: %w", err)
		}
		if t.cursor+need > t.sBlocks {
			return fmt.Errorf("smallwrite: batch of %d bytes exceeds staging segment", headerSize+payload)
		}
	}

	buf := make([]byte, int(need)*t.bs)
	binary.BigEndian.PutUint32(buf[0:], batchMagic)
	binary.BigEndian.PutUint64(buf[4:], t.gen)
	binary.BigEndian.PutUint32(buf[12:], uint32(len(batch)))
	binary.BigEndian.PutUint32(buf[16:], uint32(payload))
	p := headerSize
	for _, r := range batch {
		binary.BigEndian.PutUint64(buf[p:], r.addr)
		if r.marker {
			binary.BigEndian.PutUint64(buf[p+8:], r.bound)
			binary.BigEndian.PutUint32(buf[p+16:], supersedeOff)
			binary.BigEndian.PutUint32(buf[p+20:], 0)
		} else {
			binary.BigEndian.PutUint64(buf[p+8:], r.seq)
			binary.BigEndian.PutUint32(buf[p+16:], uint32(r.off))
			binary.BigEndian.PutUint32(buf[p+20:], uint32(len(r.data)))
			copy(buf[p+recHdrSize:], r.data)
		}
		p += recHdrSize + len(r.data)
	}
	binary.BigEndian.PutUint32(buf[20:], crc32.Checksum(buf[headerSize:headerSize+payload], crcTab))

	// The batch carries other writers' acknowledged-to-be bytes: strip
	// this leader's cancellation so its death cannot fail the group.
	wctx := context.WithoutCancel(ctx)
	if _, err := t.eng.WriteAt(wctx, buf, int64(t.sBase+t.cursor)*int64(t.bs)); err != nil {
		return fmt.Errorf("smallwrite: staging append: %w", err)
	}
	t.cursor += need
	t.stats.Commits.Add(1)
	t.stats.CommitRecords.Add(uint64(len(batch)))
	t.stats.CommitBlocks.Add(need)
	return nil
}

// Flush merges every staged record into its home block and resets the
// staging segment — the Store.Flush barrier. It waits for any commit
// in progress, then holds the commit gate for the whole merge.
func (t *Tier) Flush(ctx context.Context) error {
	t.mu.Lock()
	for t.busy {
		t.cond.Wait()
	}
	t.busy = true
	t.mu.Unlock()

	err := t.flushHeld(ctx)

	t.mu.Lock()
	t.busy = false
	t.cond.Broadcast()
	t.mu.Unlock()
	return err
}

// flushHeld merges the overlay into home blocks. Caller holds busy
// (not mu). Commits are gated out, so the overlay only shrinks
// (Supersede under direct writes) while this runs; each block's merge
// runs under its tier lock, serializing against direct writers.
func (t *Tier) flushHeld(ctx context.Context) error {
	t.mu.Lock()
	addrs := make([]uint64, 0, len(t.overlay))
	for a := range t.overlay {
		addrs = append(addrs, a)
	}
	t.mu.Unlock()
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	for _, addr := range addrs {
		if err := t.flushBlock(ctx, addr); err != nil {
			return err
		}
	}

	t.mu.Lock()
	drained := len(t.overlay) == 0
	t.mu.Unlock()
	if drained {
		// Reset the segment. A tombstone header keeps a post-crash
		// Salvage from replaying batches this flush already applied.
		if t.cursor > 0 {
			if err := t.base.WriteBlock(context.WithoutCancel(ctx), t.sBase, make([]byte, t.bs)); err != nil {
				return fmt.Errorf("smallwrite: segment tombstone: %w", err)
			}
		}
		t.cursor = 0
		t.gen++
		t.mu.Lock()
		t.epochFlushed = make(map[uint64]struct{})
		t.mu.Unlock()
		t.stats.Flushes.Add(1)
	}
	return nil
}

func (t *Tier) flushBlock(ctx context.Context, addr uint64) error {
	li := t.lockIdx(addr)
	t.locks[li].Lock()
	defer t.locks[li].Unlock()

	t.mu.Lock()
	recs := append([]*record(nil), t.overlay[addr]...)
	t.mu.Unlock()
	if len(recs) == 0 {
		return nil // superseded while we walked the address list
	}
	blk, err := t.base.ReadBlock(ctx, addr)
	if err != nil {
		return fmt.Errorf("smallwrite: flush read block %d: %w", addr, err)
	}
	if len(blk) != t.bs {
		return fmt.Errorf("smallwrite: flush read block %d: got %d bytes, want %d", addr, len(blk), t.bs)
	}
	for _, r := range recs {
		copy(blk[r.off:], r.data)
	}
	if err := t.base.WriteBlock(ctx, addr, blk); err != nil {
		return fmt.Errorf("smallwrite: flush write block %d: %w", addr, err)
	}

	// Reconcile the cache (OnApply invalidates and poisons in-flight
	// fills) BEFORE dropping the overlay records: a reader that finds
	// the overlay empty must not be able to pick up pre-merge cached
	// content afterwards.
	if t.onApply != nil {
		t.onApply(addr)
	}

	// Drop what we applied. Records newer than our snapshot cannot
	// exist (commits are gated), but Supersede may have removed some.
	// The merged records stay in the segment until the epoch resets:
	// remember the address so a direct write meanwhile still appends a
	// durable supersede marker (see Supersede).
	maxSeq := recs[len(recs)-1].seq
	t.mu.Lock()
	cur := t.overlay[addr]
	kept := cur[:0]
	for _, r := range cur {
		if r.seq <= maxSeq {
			t.liveBytes.Add(-int64(len(r.data)))
			t.liveRecords.Add(-1)
		} else {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(t.overlay, addr)
	} else {
		t.overlay[addr] = kept
	}
	t.epochFlushed[addr] = struct{}{}
	t.mu.Unlock()

	t.stats.FlushedBlocks.Add(1)
	return nil
}

// Salvage replays whole batches left in the staging segment by a
// crashed client: it scans from the segment head, applies every record
// of every batch whose generation matches the first batch's (later
// generations belong to interrupted epochs and are ignored, exactly as
// a torn tail would be), then tombstones the segment. Call it on a
// freshly constructed Tier BEFORE serving traffic; acknowledged small
// writes that were staged but never flushed become visible in the base
// store again. Returns the number of records replayed.
func (t *Tier) Salvage(ctx context.Context) (int, error) {
	t.mu.Lock()
	for t.busy {
		t.cond.Wait()
	}
	t.busy = true
	t.mu.Unlock()
	n, err := t.salvageHeld(ctx)
	t.mu.Lock()
	t.busy = false
	t.cond.Broadcast()
	t.mu.Unlock()
	return n, err
}

func (t *Tier) salvageHeld(ctx context.Context) (int, error) {
	var recs []*record
	var gen uint64
	pos := uint64(0)
	for pos < t.sBlocks {
		head, err := t.base.ReadBlock(ctx, t.sBase+pos)
		if err != nil {
			return 0, fmt.Errorf("smallwrite: salvage read: %w", err)
		}
		if len(head) < headerSize || binary.BigEndian.Uint32(head[0:]) != batchMagic {
			break
		}
		bgen := binary.BigEndian.Uint64(head[4:])
		if pos == 0 {
			gen = bgen
		} else if bgen != gen {
			break
		}
		count := int(binary.BigEndian.Uint32(head[12:]))
		payload := int(binary.BigEndian.Uint32(head[16:]))
		sum := binary.BigEndian.Uint32(head[20:])
		need := uint64((headerSize + payload + t.bs - 1) / t.bs)
		if payload <= 0 || pos+need > t.sBlocks {
			return 0, fmt.Errorf("%w: batch at block %d claims %d payload bytes", ErrCorruptSegment, pos, payload)
		}
		buf := make([]byte, 0, int(need)*t.bs)
		buf = append(buf, head...)
		for b := uint64(1); b < need; b++ {
			blk, err := t.base.ReadBlock(ctx, t.sBase+pos+b)
			if err != nil {
				return 0, fmt.Errorf("smallwrite: salvage read: %w", err)
			}
			buf = append(buf, blk...)
		}
		body := buf[headerSize : headerSize+payload]
		if crc32.Checksum(body, crcTab) != sum {
			return 0, fmt.Errorf("%w: batch at block %d fails checksum", ErrCorruptSegment, pos)
		}
		p := 0
		for i := 0; i < count; i++ {
			if p+recHdrSize > payload {
				return 0, fmt.Errorf("%w: batch at block %d truncated at record %d", ErrCorruptSegment, pos, i)
			}
			addr := binary.BigEndian.Uint64(body[p:])
			seq := binary.BigEndian.Uint64(body[p+8:])
			rawOff := binary.BigEndian.Uint32(body[p+16:])
			ln := int(binary.BigEndian.Uint32(body[p+20:]))
			if rawOff == supersedeOff {
				// Supersede tombstone: a direct write durably overwrote
				// addr's records below seq. Void the ones collected so
				// far; records appended after the marker stand.
				if ln != 0 {
					return 0, fmt.Errorf("%w: batch at block %d marker %d carries payload", ErrCorruptSegment, pos, i)
				}
				kept := recs[:0]
				for _, r := range recs {
					if r.addr == addr && r.seq < seq {
						continue
					}
					kept = append(kept, r)
				}
				recs = kept
				p += recHdrSize
				continue
			}
			off := int(rawOff)
			if ln < 0 || p+recHdrSize+ln > payload || off < 0 || off+ln > t.bs {
				return 0, fmt.Errorf("%w: batch at block %d record %d out of bounds", ErrCorruptSegment, pos, i)
			}
			recs = append(recs, &record{addr: addr, seq: seq, off: off, data: append([]byte(nil), body[p+recHdrSize:p+recHdrSize+ln]...)})
			p += recHdrSize + ln
		}
		pos += need
	}
	if len(recs) == 0 {
		return 0, nil
	}

	// Replay grouped by home block, preserving append order within it.
	byAddr := make(map[uint64][]*record)
	order := make([]uint64, 0)
	for _, r := range recs {
		if _, ok := byAddr[r.addr]; !ok {
			order = append(order, r.addr)
		}
		byAddr[r.addr] = append(byAddr[r.addr], r)
	}
	for _, addr := range order {
		blk, err := t.base.ReadBlock(ctx, addr)
		if err != nil {
			return 0, fmt.Errorf("smallwrite: salvage apply read %d: %w", addr, err)
		}
		for _, r := range byAddr[addr] {
			copy(blk[r.off:], r.data)
		}
		if err := t.base.WriteBlock(ctx, addr, blk); err != nil {
			return 0, fmt.Errorf("smallwrite: salvage apply write %d: %w", addr, err)
		}
		if t.onApply != nil {
			t.onApply(addr)
		}
	}
	if err := t.base.WriteBlock(ctx, t.sBase, make([]byte, t.bs)); err != nil {
		return len(recs), fmt.Errorf("smallwrite: salvage tombstone: %w", err)
	}
	t.stats.Salvaged.Add(uint64(len(recs)))
	return len(recs), nil
}

// Close flushes staged records and refuses further writes.
func (t *Tier) Close(ctx context.Context) error {
	err := t.Flush(ctx)
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return err
}

package smallwrite

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecstore/internal/bulk"
)

// memTarget is an in-memory bulk.Target with injectable failures.
type memTarget struct {
	mu     sync.Mutex
	bs     int
	k      int
	cap    uint64
	blocks map[uint64][]byte

	reads  atomic.Uint64
	writes atomic.Uint64

	failWrites atomic.Bool
	failAddr   atomic.Uint64 // fail writes to this addr when failOne set
	failOne    atomic.Bool

	// writeGate, when set, is received from at the top of every
	// WriteBlock: tests use it to stall the commit leader so
	// followers pile onto the next batch.
	writeGate chan struct{}
}

func newMem(bs, k int, capBlocks uint64) *memTarget {
	return &memTarget{bs: bs, k: k, cap: capBlocks, blocks: make(map[uint64][]byte)}
}

func (m *memTarget) BlockSize() int      { return m.bs }
func (m *memTarget) StripeK() int        { return m.k }
func (m *memTarget) GroupBlocks() uint64 { return 0 }
func (m *memTarget) Capacity() uint64    { return m.cap }

func (m *memTarget) ReadBlock(_ context.Context, addr uint64) ([]byte, error) {
	m.reads.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]byte, m.bs)
	copy(out, m.blocks[addr])
	return out, nil
}

func (m *memTarget) WriteBlock(_ context.Context, addr uint64, data []byte) error {
	m.writes.Add(1)
	if m.writeGate != nil {
		<-m.writeGate
	}
	if m.failWrites.Load() || (m.failOne.Load() && m.failAddr.Load() == addr) {
		return errors.New("memTarget: injected write failure")
	}
	if len(data) != m.bs {
		return fmt.Errorf("memTarget: bad block size %d", len(data))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocks[addr] = append([]byte(nil), data...)
	return nil
}

func (m *memTarget) WriteStripes(ctx context.Context, writes []bulk.StripeWrite) ([]error, bulk.WriteStats) {
	errs := make([]error, len(writes))
	for i, w := range writes {
		for j, v := range w.Values {
			if err := m.WriteBlock(ctx, w.Addr+uint64(j), v); err != nil {
				errs[i] = err
				break
			}
		}
	}
	return errs, bulk.WriteStats{}
}

func (m *memTarget) get(addr uint64) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]byte, m.bs)
	copy(out, m.blocks[addr])
	return out
}

func newTier(t testing.TB, m *memTarget, staging uint64) *Tier {
	t.Helper()
	tr, err := New(Options{Base: m, StagingBase: m.cap - staging, StagingBlocks: staging})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

const bs = 128

func TestWriteVisibleThroughPatch(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()

	if err := tr.Write(ctx, 7, 10, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	blk := m.get(7)
	if !tr.Patch(7, blk) {
		t.Fatal("no staged bytes applied")
	}
	if string(blk[10:15]) != "hello" {
		t.Fatalf("patched block = %q", blk[8:18])
	}
	// Base untouched until flush.
	if got := m.get(7); !bytes.Equal(got, make([]byte, bs)) {
		t.Fatal("base block written before flush")
	}
	// Staged bytes durable in the segment.
	if tr.Stats().Commits.Load() == 0 || tr.StagedRecords() != 1 {
		t.Fatalf("commits=%d staged=%d", tr.Stats().Commits.Load(), tr.StagedRecords())
	}
}

func TestOverlappingRecordsApplyInOrder(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()

	must(t, tr.Write(ctx, 3, 0, []byte("aaaa")))
	must(t, tr.Write(ctx, 3, 2, []byte("bb")))
	must(t, tr.Write(ctx, 3, 1, []byte("c")))
	blk := m.get(3)
	tr.Patch(3, blk)
	if string(blk[:4]) != "acbb" {
		t.Fatalf("merged prefix = %q", blk[:4])
	}
	// Flush must produce the same merge in the base store.
	must(t, tr.Flush(ctx))
	if got := m.get(3); string(got[:4]) != "acbb" {
		t.Fatalf("flushed prefix = %q", got[:4])
	}
	if tr.StagedRecords() != 0 {
		t.Fatalf("%d records survived flush", tr.StagedRecords())
	}
}

func TestFlushResetsSegmentAndInvokesOnApply(t *testing.T) {
	m := newMem(bs, 4, 1024)
	var applied []uint64
	var amu sync.Mutex
	tr, err := New(Options{
		Base: m, StagingBase: 1024 - 16, StagingBlocks: 16,
		OnApply: func(a uint64) { amu.Lock(); applied = append(applied, a); amu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	must(t, tr.Write(ctx, 1, 0, []byte("x")))
	must(t, tr.Write(ctx, 2, 0, []byte("y")))
	must(t, tr.Flush(ctx))
	amu.Lock()
	n := len(applied)
	amu.Unlock()
	if n != 2 {
		t.Fatalf("OnApply fired %d times, want 2", n)
	}
	if tr.cursor != 0 {
		t.Fatalf("cursor %d after flush", tr.cursor)
	}
	// Tombstone: segment head no longer parses as a batch.
	head := m.get(1024 - 16)
	if head[0] != 0 || head[1] != 0 {
		t.Fatal("no tombstone written")
	}
}

func TestSegmentFullTriggersFlush(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 4) // tiny segment: one batch per block or two
	ctx := context.Background()
	payload := make([]byte, 64)
	for i := 0; i < 32; i++ {
		must(t, tr.Write(ctx, uint64(i%5), 0, payload))
	}
	if tr.Stats().SegmentFullFlush.Load() == 0 {
		t.Fatal("segment never filled")
	}
	// Everything acknowledged is readable: base+patch shows the payload.
	for a := uint64(0); a < 5; a++ {
		blk := m.get(a)
		tr.Patch(a, blk)
		if !bytes.Equal(blk[:64], payload) {
			t.Fatalf("block %d lost its bytes", a)
		}
	}
}

func TestSupersedeDropsOnlyOlderRecords(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()

	must(t, tr.Write(ctx, 9, 0, []byte("old")))
	seq, unlock := tr.LockAddrs(9)
	// A record sequenced after the direct write's snapshot (concurrent
	// writer) must survive the supersede.
	done := make(chan error, 1)
	go func() { done <- tr.Write(ctx, 9, 100, []byte("new")) }()

	full := bytes.Repeat([]byte{'F'}, bs)
	must(t, m.WriteBlock(ctx, 9, full)) // the direct write, under the lock
	tr.Supersede(9, seq)
	unlock()
	must(t, <-done)

	blk := m.get(9)
	tr.Patch(9, blk)
	if string(blk[:3]) == "old" {
		t.Fatal("superseded record resurfaced")
	}
	if string(blk[100:103]) != "new" {
		t.Fatal("concurrent record lost")
	}
	if tr.Stats().Supersedes.Load() != 1 {
		t.Fatalf("supersedes=%d", tr.Stats().Supersedes.Load())
	}
}

func TestSupersedeDurableSurvivesCrash(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()
	must(t, tr.Write(ctx, 9, 0, []byte("old")))
	must(t, tr.Write(ctx, 6, 0, []byte("keep")))

	seq, unlock := tr.LockAddrs(9)
	full := bytes.Repeat([]byte{'F'}, bs)
	must(t, m.WriteBlock(ctx, 9, full)) // the direct write, under the lock
	needMark := tr.Supersede(9, seq)
	unlock()
	if !needMark {
		t.Fatal("supersede of staged records did not request a durable mark")
	}
	must(t, tr.SupersedeDurable(ctx, []SupersedeMark{{Addr: 9, BeforeSeq: seq}}))
	if tr.Stats().SupersedeMarks.Load() != 1 {
		t.Fatalf("marks=%d", tr.Stats().SupersedeMarks.Load())
	}

	// Client crashes: the overlay is gone, the segment survives. The
	// tombstoned record must NOT be replayed over the acknowledged
	// direct write; block 6's record must still be recovered.
	tr2 := newTier(t, m, 16)
	n, err := tr2.Salvage(ctx)
	must(t, err)
	if n != 1 {
		t.Fatalf("salvaged %d records, want 1", n)
	}
	if got := m.get(9); got[0] != 'F' {
		t.Fatalf("stale staged bytes replayed over the direct write: %q", got[:4])
	}
	if got := m.get(6); string(got[:4]) != "keep" {
		t.Fatalf("unrelated record lost: %q", got[:4])
	}
}

func TestSupersedeMarkerSparesNewerRecords(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()
	must(t, tr.Write(ctx, 9, 0, []byte("old")))

	seq, unlock := tr.LockAddrs(9)
	// Sequenced after the direct write's snapshot (concurrent writer):
	// staged into the segment BEFORE the marker, but must survive it.
	must(t, tr.Write(ctx, 9, 100, []byte("new")))
	full := bytes.Repeat([]byte{'F'}, bs)
	must(t, m.WriteBlock(ctx, 9, full))
	tr.Supersede(9, seq)
	unlock()
	must(t, tr.SupersedeDurable(ctx, []SupersedeMark{{Addr: 9, BeforeSeq: seq}}))

	tr2 := newTier(t, m, 16)
	n, err := tr2.Salvage(ctx)
	must(t, err)
	if n != 1 {
		t.Fatalf("salvaged %d records, want 1 (the post-snapshot one)", n)
	}
	got := m.get(9)
	if string(got[100:103]) != "new" {
		t.Fatal("post-snapshot record lost to the supersede marker")
	}
	if string(got[:3]) == "old" {
		t.Fatal("superseded record resurfaced")
	}
}

func TestSupersedeAfterFlushWindowNeedsDurableMark(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()
	must(t, tr.Write(ctx, 9, 0, []byte("old")))

	// Fail only the segment tombstone: the flush merges the record into
	// its home block and drops it from the overlay, but the segment
	// still holds the batch — the window in which a direct write sees
	// nothing to supersede in memory yet still needs a durable mark.
	m.failOne.Store(true)
	m.failAddr.Store(1024 - 16)
	if err := tr.Flush(ctx); err == nil {
		t.Fatal("tombstone failure did not surface")
	}
	m.failOne.Store(false)

	seq, unlock := tr.LockAddrs(9)
	full := bytes.Repeat([]byte{'F'}, bs)
	must(t, m.WriteBlock(ctx, 9, full))
	needMark := tr.Supersede(9, seq)
	unlock()
	if !needMark {
		t.Fatal("flushed-but-unreset records did not request a durable mark")
	}
	must(t, tr.SupersedeDurable(ctx, []SupersedeMark{{Addr: 9, BeforeSeq: seq}}))

	tr2 := newTier(t, m, 16)
	if n, err := tr2.Salvage(ctx); err != nil || n != 0 {
		t.Fatalf("salvage: n=%d err=%v", n, err)
	}
	if got := m.get(9); got[0] != 'F' {
		t.Fatalf("flushed record replayed over the direct write: %q", got[:4])
	}
}

func TestFailedDirectWriteKeepsStagedRecords(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()
	must(t, tr.Write(ctx, 9, 0, []byte("keep")))
	seq, unlock := tr.LockAddrs(9)
	m.failOne.Store(true)
	m.failAddr.Store(9)
	if err := m.WriteBlock(ctx, 9, make([]byte, bs)); err == nil {
		t.Fatal("injected failure did not fire")
	}
	// Direct write failed: caller must NOT supersede. Records stay.
	_ = seq
	unlock()
	m.failOne.Store(false)
	blk := m.get(9)
	tr.Patch(9, blk)
	if string(blk[:4]) != "keep" {
		t.Fatal("staged record lost after failed direct write")
	}
}

func TestFlushFailureKeepsUnappliedRecords(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()
	must(t, tr.Write(ctx, 1, 0, []byte("a")))
	must(t, tr.Write(ctx, 2, 0, []byte("b")))
	m.failWrites.Store(true)
	if err := tr.Flush(ctx); err == nil {
		t.Fatal("flush succeeded against failing base")
	}
	m.failWrites.Store(false)
	// Retry succeeds and nothing was lost.
	must(t, tr.Flush(ctx))
	if got := m.get(1); got[0] != 'a' {
		t.Fatal("record for block 1 lost")
	}
	if got := m.get(2); got[0] != 'b' {
		t.Fatal("record for block 2 lost")
	}
}

func TestSalvageReplaysAcknowledgedRecords(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()
	must(t, tr.Write(ctx, 5, 7, []byte("ack'd")))
	must(t, tr.Write(ctx, 6, 0, []byte("also")))
	// Client crashes: overlay is lost, the segment survives. A new
	// tier over the same base salvages before serving.
	tr2 := newTier(t, m, 16)
	n, err := tr2.Salvage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("salvaged %d records, want 2", n)
	}
	if got := m.get(5); string(got[7:12]) != "ack'd" {
		t.Fatalf("block 5 = %q", got[:16])
	}
	if got := m.get(6); string(got[:4]) != "also" {
		t.Fatalf("block 6 = %q", got[:8])
	}
	// Second salvage is a no-op (tombstoned).
	if n, err := tr2.Salvage(ctx); err != nil || n != 0 {
		t.Fatalf("re-salvage: n=%d err=%v", n, err)
	}
}

func TestSalvageIgnoresFlushedEpoch(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()
	must(t, tr.Write(ctx, 5, 0, []byte("flushed")))
	must(t, tr.Flush(ctx))
	// Overwrite the flushed content directly: a salvage replay of the
	// already-flushed batch would resurrect "flushed" over it.
	full := bytes.Repeat([]byte{'N'}, bs)
	must(t, m.WriteBlock(ctx, 5, full))
	tr2 := newTier(t, m, 16)
	if n, err := tr2.Salvage(ctx); err != nil || n != 0 {
		t.Fatalf("salvage after clean flush: n=%d err=%v", n, err)
	}
	if got := m.get(5); got[0] != 'N' {
		t.Fatal("salvage resurrected flushed bytes")
	}
}

func TestSalvageRejectsCorruptBatch(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()
	must(t, tr.Write(ctx, 5, 0, []byte("payload")))
	// Corrupt one payload byte in the segment.
	head := m.get(1024 - 16)
	head[headerSize+recHdrSize] ^= 0xff
	must(t, m.WriteBlock(ctx, 1024-16, head))
	tr2 := newTier(t, m, 16)
	if _, err := tr2.Salvage(ctx); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("err = %v, want ErrCorruptSegment", err)
	}
}

func TestGroupCommitBatchesConcurrentWriters(t *testing.T) {
	m := newMem(bs, 4, 4096)
	gate := make(chan struct{})
	m.writeGate = gate
	tr := newTier(t, m, 64)
	ctx := context.Background()
	const writers = 16
	const perWriter = 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				payload := []byte{byte(w), byte(i)}
				if err := tr.Write(ctx, uint64(w), (i*2)%bs, payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Ration segment appends: each blocked WriteBlock is a commit
	// leader holding the door while the other writers pile onto the
	// next batch, so batching is guaranteed rather than a scheduling
	// accident.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
feed:
	for {
		time.Sleep(200 * time.Microsecond)
		select {
		case gate <- struct{}{}:
		case <-done:
			break feed
		}
	}
	close(gate) // open the gate for the final flush
	wg.Wait()
	commits := tr.Stats().Commits.Load()
	records := tr.Stats().CommitRecords.Load()
	if records != writers*perWriter {
		t.Fatalf("records=%d", records)
	}
	if commits >= records {
		t.Fatalf("no batching: %d commits for %d records", commits, records)
	}
	t.Logf("group commit: %d records in %d commits (%.1f rec/commit)",
		records, commits, float64(records)/float64(commits))
	must(t, tr.Flush(ctx))
	for w := 0; w < writers; w++ {
		got := m.get(uint64(w))
		if got[(perWriter-1)*2%bs] != byte(w) {
			t.Fatalf("writer %d bytes lost", w)
		}
	}
}

func TestWriteValidation(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()
	if err := tr.Write(ctx, 1, bs-1, []byte("xx")); err == nil {
		t.Fatal("accepted record past block end")
	}
	if err := tr.Write(ctx, 1024-8, 0, []byte("x")); err == nil {
		t.Fatal("accepted record inside the staging extent")
	}
	if err := tr.Write(ctx, 5000, 0, []byte("x")); !errors.Is(err, bulk.ErrOutOfRange) {
		t.Fatalf("out-of-range write: %v", err)
	}
	if err := tr.Write(ctx, 1, 0, nil); err != nil {
		t.Fatalf("empty write should be a no-op: %v", err)
	}
}

func TestCloseFlushesAndRefuses(t *testing.T) {
	m := newMem(bs, 4, 1024)
	tr := newTier(t, m, 16)
	ctx := context.Background()
	must(t, tr.Write(ctx, 1, 0, []byte("z")))
	must(t, tr.Close(ctx))
	if got := m.get(1); got[0] != 'z' {
		t.Fatal("close did not flush")
	}
	if err := tr.Write(ctx, 1, 0, []byte("w")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTierWrite128B(b *testing.B) {
	m := newMem(4096, 4, 1<<20)
	tr, err := New(Options{Base: m, StagingBase: 1<<20 - 4096, StagingBlocks: 4096})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	payload := make([]byte, 128)
	b.SetBytes(128)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if err := tr.Write(ctx, uint64(i%512), (i*128)%(4096-128), payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

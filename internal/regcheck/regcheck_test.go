package regcheck

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// scripted builds a history from explicit timestamps for deterministic
// violation tests.
type scripted struct {
	h   *History
	t   time.Time
	seq int
}

func newScripted() *scripted {
	base := time.Unix(1000, 0)
	s := &scripted{h: New(), t: base}
	s.h.now = func() time.Time {
		s.seq++
		return base.Add(time.Duration(s.seq) * time.Millisecond)
	}
	return s
}

func TestSequentialHistoryValid(t *testing.T) {
	s := newScripted()
	h := s.h
	w := h.BeginWrite(1)
	h.EndWrite(w)
	r := h.BeginRead()
	h.EndRead(r, 1)
	w = h.BeginWrite(2)
	h.EndWrite(w)
	r = h.BeginRead()
	h.EndRead(r, 2)
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInitialValueValidBeforeWrites(t *testing.T) {
	s := newScripted()
	h := s.h
	r := h.BeginRead()
	h.EndRead(r, InitialValue)
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInitialValueInvalidAfterCompletedWrite(t *testing.T) {
	s := newScripted()
	h := s.h
	w := h.BeginWrite(1)
	h.EndWrite(w)
	r := h.BeginRead()
	h.EndRead(r, InitialValue)
	err := h.Check()
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want Violation", err)
	}
	if !strings.Contains(v.Error(), "initial value") {
		t.Fatalf("unexpected reason: %v", v)
	}
}

func TestInitialValueValidDuringConcurrentWrite(t *testing.T) {
	s := newScripted()
	h := s.h
	w := h.BeginWrite(1)
	r := h.BeginRead()
	h.EndRead(r, InitialValue) // write still in flight: old value OK
	h.EndWrite(w)
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNeverWrittenValueInvalid(t *testing.T) {
	s := newScripted()
	h := s.h
	r := h.BeginRead()
	h.EndRead(r, 99)
	err := h.Check()
	var v *Violation
	if !errors.As(err, &v) || !strings.Contains(v.Error(), "never written") {
		t.Fatalf("err = %v", err)
	}
}

func TestStaleReadInvalid(t *testing.T) {
	// w1 completes, then w2 completes, THEN a read returns w1: stale.
	s := newScripted()
	h := s.h
	w1 := h.BeginWrite(1)
	h.EndWrite(w1)
	w2 := h.BeginWrite(2)
	h.EndWrite(w2)
	r := h.BeginRead()
	h.EndRead(r, 1)
	err := h.Check()
	var v *Violation
	if !errors.As(err, &v) || !strings.Contains(v.Error(), "stale") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentWritesEitherValueValid(t *testing.T) {
	// Two overlapping writes; concurrent read may return either, and a
	// later read may return whichever "won".
	s := newScripted()
	h := s.h
	w1 := h.BeginWrite(1)
	w2 := h.BeginWrite(2)
	r := h.BeginRead()
	h.EndRead(r, 2)
	h.EndWrite(w1)
	h.EndWrite(w2)
	r2 := h.BeginRead()
	h.EndRead(r2, 1) // concurrent writes: no strict order, both legal
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFromTheFutureInvalid(t *testing.T) {
	s := newScripted()
	h := s.h
	r := h.BeginRead()
	h.EndRead(r, 1) // read ends...
	w := h.BeginWrite(1)
	h.EndWrite(w) // ...before the write even begins
	err := h.Check()
	var v *Violation
	if !errors.As(err, &v) || !strings.Contains(v.Error(), "future") {
		t.Fatalf("err = %v", err)
	}
}

func TestCrashedWriterValueStaysLegal(t *testing.T) {
	// A write that never completes is concurrent with everything after
	// it; reads may keep returning it (it may have taken effect).
	s := newScripted()
	h := s.h
	_ = h.BeginWrite(1) // never ended: crashed writer
	r := h.BeginRead()
	h.EndRead(r, 1)
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashedWriterDoesNotOverwrite(t *testing.T) {
	// The crashed write must NOT count as overwriting the previous
	// value: a read after it may still return the old value.
	s := newScripted()
	h := s.h
	w1 := h.BeginWrite(1)
	h.EndWrite(w1)
	_ = h.BeginWrite(2) // crashes mid-write
	r := h.BeginRead()
	h.EndRead(r, 1)
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateValuesRejected(t *testing.T) {
	s := newScripted()
	h := s.h
	w := h.BeginWrite(1)
	h.EndWrite(w)
	w = h.BeginWrite(1)
	h.EndWrite(w)
	if err := h.Check(); err == nil {
		t.Fatal("duplicate write values accepted")
	}
}

func TestZeroValueWritePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BeginWrite(0) did not panic")
		}
	}()
	New().BeginWrite(InitialValue)
}

func TestCounts(t *testing.T) {
	h := New()
	w := h.BeginWrite(1)
	h.EndWrite(w)
	r := h.BeginRead()
	h.EndRead(r, 1)
	ws, rs := h.Counts()
	if ws != 1 || rs != 1 {
		t.Fatalf("counts = %d, %d", ws, rs)
	}
}

func TestConcurrentRecordingIsSafe(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w := h.BeginWrite(uint64(g*1000 + i + 1))
				h.EndWrite(w)
				r := h.BeginRead()
				h.EndRead(r, uint64(g*1000+i+1))
			}
		}(g)
	}
	wg.Wait()
	ws, rs := h.Counts()
	if ws != 400 || rs != 400 {
		t.Fatalf("counts = %d, %d", ws, rs)
	}
	// NOTE: no Check() here — this test only exercises concurrent
	// recording; the fabricated read-own-write responses are not
	// guaranteed to satisfy regularity under arbitrary interleavings
	// (another goroutine's write can complete between a write and its
	// paired read).
}

// Package regcheck verifies execution histories against the
// consistency contract of the paper's Section 3.1: multi-writer
// regular registers (Lamport's regular registers generalized to
// multiple writers, after Shao-Pierce-Welch). Informally: a read never
// returns a value that was never written or that was already
// overwritten when the read began; a read concurrent with writes may
// return any of their values or the previously written one.
//
// Concurrent protocol operations append begin/end events to a History;
// Check then validates every read:
//
//	read r may return write w  iff
//	  (1) w began before r ended, and
//	  (2) no write w2 exists with  w.End < w2.Start  and  w2.End < r.Start
//	      (w was strictly overwritten before r began).
//
// The initial value behaves like a virtual write that precedes
// everything: it is legal exactly while no real write completed before
// the read began.
package regcheck

import (
	"fmt"
	"sync"
	"time"
)

// InitialValue is the register's content before any write (the zero
// block, in the storage system).
const InitialValue = uint64(0)

type writeRec struct {
	value uint64
	start time.Time
	end   time.Time
	open  bool // still in flight (its writer may have crashed)
}

type readRec struct {
	value uint64
	start time.Time
	end   time.Time
}

// History collects operations on ONE register (one logical block).
// It is safe for concurrent use; Check may be called after the
// recorded workload has quiesced.
type History struct {
	mu     sync.Mutex
	writes []writeRec
	reads  []readRec
	now    func() time.Time
}

// New returns an empty history. Values written must be unique and
// non-zero (InitialValue is reserved for the pre-write content).
func New() *History {
	return &History{now: time.Now}
}

// WriteToken identifies an in-flight write.
type WriteToken struct {
	idx int
}

// BeginWrite records a write invocation of the given value.
func (h *History) BeginWrite(value uint64) WriteToken {
	if value == InitialValue {
		panic("regcheck: value 0 is reserved for the initial content")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.writes = append(h.writes, writeRec{value: value, start: h.now(), open: true})
	return WriteToken{idx: len(h.writes) - 1}
}

// EndWrite records the write's completion. A write whose EndWrite is
// never called models a crashed writer; its value stays legal for
// concurrent-or-later reads (it may or may not have taken effect).
func (h *History) EndWrite(t WriteToken) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := &h.writes[t.idx]
	w.end = h.now()
	w.open = false
}

// ReadToken identifies an in-flight read.
type ReadToken struct {
	start time.Time
}

// BeginRead records a read invocation.
func (h *History) BeginRead() ReadToken {
	return ReadToken{start: h.nowFn()()}
}

func (h *History) nowFn() func() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.now
}

// EndRead records the read's response.
func (h *History) EndRead(t ReadToken, value uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reads = append(h.reads, readRec{value: value, start: t.start, end: h.now()})
}

// Violation describes one read that no write can justify.
type Violation struct {
	Value     uint64
	ReadStart time.Time
	ReadEnd   time.Time
	Reason    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("regcheck: read of %d at [%s, %s] violates regularity: %s",
		v.Value, v.ReadStart.Format("15:04:05.000000"), v.ReadEnd.Format("15:04:05.000000"), v.Reason)
}

// Check validates every recorded read and returns the first violation,
// or nil. Cost is O(reads x writes^2) in the worst case; histories from
// tests are small.
func (h *History) Check() error {
	h.mu.Lock()
	writes := append([]writeRec(nil), h.writes...)
	reads := append([]readRec(nil), h.reads...)
	h.mu.Unlock()

	byValue := make(map[uint64]*writeRec, len(writes))
	for i := range writes {
		w := &writes[i]
		if prev, dup := byValue[w.value]; dup {
			_ = prev
			return fmt.Errorf("regcheck: value %d written twice; values must be unique", w.value)
		}
		byValue[w.value] = w
	}

	// overwrittenBefore reports whether write w was strictly
	// superseded before time t: some w2 started after w ended and
	// completed before t.
	overwrittenBefore := func(w *writeRec, t time.Time) bool {
		for i := range writes {
			w2 := &writes[i]
			if w2 == w || w2.open {
				continue
			}
			if (w == nil || (!w.open && w.end.Before(w2.start))) && w2.end.Before(t) {
				return true
			}
		}
		return false
	}

	for _, r := range reads {
		if r.value == InitialValue {
			// Initial content: legal iff nothing was overwriting it —
			// i.e. no write completed before the read began.
			if overwrittenBefore(nil, r.start) {
				return &Violation{
					Value: r.value, ReadStart: r.start, ReadEnd: r.end,
					Reason: "returned the initial value although a write had completed before the read began",
				}
			}
			continue
		}
		w, ok := byValue[r.value]
		if !ok {
			return &Violation{
				Value: r.value, ReadStart: r.start, ReadEnd: r.end,
				Reason: "value was never written",
			}
		}
		// (1) the write must have begun before the read ended.
		if w.start.After(r.end) {
			return &Violation{
				Value: r.value, ReadStart: r.start, ReadEnd: r.end,
				Reason: "write began after the read ended (read from the future)",
			}
		}
		// (2) the write must not have been strictly overwritten before
		// the read began.
		if overwrittenBefore(w, r.start) {
			return &Violation{
				Value: r.value, ReadStart: r.start, ReadEnd: r.end,
				Reason: "write was strictly overwritten before the read began (stale read)",
			}
		}
	}
	return nil
}

// Counts reports recorded operation totals.
func (h *History) Counts() (writes, reads int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.writes), len(h.reads)
}

package bulk

import (
	"context"
	"io"

	"ecstore/internal/bufpool"
)

// Reader returns an io.Reader streaming nBytes from byte offset off.
// A negative nBytes streams to the target's capacity (unbounded
// targets then stream forever). The reader prefetches ReadAhead
// stripes ahead of the consumer: while one chunk is being drained the
// next is already in flight, so a steady consumer sees storage at
// pipeline speed rather than chunk-turnaround speed. Chunks draw from
// the shared buffer pool and are recycled as they drain.
//
// The reader is not safe for concurrent Read calls.
func (e *Engine) Reader(ctx context.Context, off, nBytes int64) io.Reader {
	if c := e.t.Capacity(); nBytes < 0 && c > 0 {
		capBytes := int64(c) * int64(e.t.BlockSize())
		nBytes = max(capBytes-off, 0)
	}
	return &reader{e: e, ctx: ctx, off: off, remaining: nBytes}
}

type chunkResult struct {
	buf []byte // pooled; receiver owns it
	n   int
	err error
}

type reader struct {
	e         *Engine
	ctx       context.Context
	off       int64
	remaining int64 // -1 never occurs here; <0 means unbounded

	buf     []byte // pooled backing of cur
	cur     []byte // unread slice of buf
	pending chan chunkResult
	err     error
}

// chunkBytes is one prefetch unit: ReadAhead stripes.
func (r *reader) chunkBytes() int64 {
	return int64(r.e.ra) * int64(r.e.t.StripeK()) * int64(r.e.t.BlockSize())
}

// prefetch launches the next chunk fetch at r.off and advances the
// offset; the result arrives on r.pending.
func (r *reader) prefetch() {
	size := r.chunkBytes()
	if r.remaining >= 0 && size > r.remaining {
		size = r.remaining
	}
	if size <= 0 {
		r.pending = nil
		return
	}
	ch := make(chan chunkResult, 1)
	r.pending = ch
	off := r.off
	r.off += size
	if r.remaining >= 0 {
		r.remaining -= size
	}
	go func() {
		buf := bufpool.Get(int(size))
		n, err := r.e.ReadAt(r.ctx, buf, off)
		ch <- chunkResult{buf: buf, n: n, err: err}
	}()
}

func (r *reader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		if r.pending == nil {
			// First read, or fully drained after the last chunk: start
			// the fetch chain (or finish).
			r.prefetch()
			if r.pending == nil {
				r.err = io.EOF
				return 0, io.EOF
			}
		}
		res := <-r.pending
		r.pending = nil
		// Keep the pipeline full: request the next chunk before the
		// consumer starts copying this one.
		if res.err == nil {
			r.prefetch()
		}
		if res.err != nil && (res.err != io.EOF || res.n == 0) {
			bufpool.Put(res.buf)
			r.err = res.err
			return 0, r.err
		}
		if res.err == io.EOF {
			// Bounded target ended early; drain what arrived, then EOF.
			r.remaining = 0
			r.pending = nil
		}
		r.buf = res.buf
		r.cur = res.buf[:res.n]
		if res.n == 0 {
			bufpool.Put(r.buf)
			r.buf = nil
			r.err = io.EOF
			return 0, io.EOF
		}
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	if len(r.cur) == 0 && r.buf != nil {
		bufpool.Put(r.buf)
		r.buf = nil
	}
	return n, nil
}

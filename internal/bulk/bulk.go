// Package bulk is the windowed, pipelined bulk-I/O engine behind every
// facade's ReadAt/WriteAt/Reader. The per-operation protocol work —
// swaps, parity deltas, ordering, recovery — lives below in
// internal/core; this package only decides *what to keep in flight*:
//
//   - a write span is decomposed into partial-block, full-block, and
//     full-stripe work items, and a bounded window (Options.MaxInFlight,
//     measured in stripes) of them runs concurrently;
//   - co-scheduled full stripes are handed to the target in batches, so
//     the core client can coalesce their redundant-node deltas destined
//     for the same site into single BatchAdd RPCs;
//   - reads get the same window, plus sequential readahead feeding the
//     streaming Reader.
//
// Throughput then scales with the window instead of being bounded by
// per-stripe round-trip latency, while each block individually keeps
// the protocol's regular-register semantics (items never split a
// block, and the engine adds no cross-item ordering that the
// underlying protocol doesn't already provide).
package bulk

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"ecstore/internal/obs"
)

// ErrShortWrite reports a WriteAt that could not complete its span;
// the returned count is the length of the longest prefix known to be
// durably written. Use errors.Is.
var ErrShortWrite = errors.New("bulk: short write")

// ErrOutOfRange reports an access beyond a bounded target's capacity.
// Use errors.Is.
var ErrOutOfRange = errors.New("bulk: address out of range")

// StripeWrite names one full-stripe write: the k blocks starting at a
// stripe-aligned block address, in address order.
type StripeWrite struct {
	Addr   uint64
	Values [][]byte
}

// WriteStats reports how a WriteStripes call's redundant-node traffic
// was coalesced (see core.BatchStats).
type WriteStats struct {
	BatchCalls uint64
	BatchRPCs  uint64
}

// Target is the view of an erasure-coded volume the engine drives.
// Both facades (single-cluster Volume and the sharded volume) adapt to
// it.
type Target interface {
	BlockSize() int
	// StripeK returns k, the data blocks per stripe.
	StripeK() int
	// GroupBlocks returns the stripe-group extent in blocks, or 0 when
	// the whole address space is one group. When non-zero it must be a
	// multiple of StripeK (stripes never straddle groups).
	GroupBlocks() uint64
	// Capacity returns the addressable block count, or 0 for unbounded.
	Capacity() uint64
	ReadBlock(ctx context.Context, addr uint64) ([]byte, error)
	WriteBlock(ctx context.Context, addr uint64, data []byte) error
	// WriteStripes writes several full stripes concurrently, one error
	// slot per stripe. The engine guarantees every stripe in one call
	// lies in the same group, so implementations route the whole batch
	// to a single protocol client (which coalesces same-site deltas).
	WriteStripes(ctx context.Context, writes []StripeWrite) ([]error, WriteStats)
}

// DefaultMaxInFlight is the write window, in stripes, when Options
// leaves it zero.
const DefaultMaxInFlight = 16

// Options configures an Engine.
type Options struct {
	// MaxInFlight bounds the in-flight window in stripes (a full-stripe
	// item costs its stripe count, a block item costs one). 1 degrades
	// to the strictly sequential path. Default DefaultMaxInFlight.
	MaxInFlight int
	// ReadAhead is the Reader's prefetch depth in stripes per chunk.
	// Defaults to MaxInFlight.
	ReadAhead int
	// Obs receives bulk.* metrics; nil disables them.
	Obs *obs.Registry
}

// Engine pipelines bulk I/O against one target. It is stateless apart
// from metrics and safe for concurrent use.
type Engine struct {
	t  Target
	w  int // window, stripes
	ra int // readahead, stripes

	inflight   *obs.Gauge   // bulk.inflight: window tokens held
	stalls     *obs.Counter // bulk.window_stalls: dispatches that had to wait
	batchCalls *obs.Counter // bulk.batch_calls: logical batch-adds issued below
	batchRPCs  *obs.Counter // bulk.batch_rpcs: physical RPCs they collapsed into
}

// New builds an engine over t.
func New(t Target, opts Options) *Engine {
	w := opts.MaxInFlight
	if w <= 0 {
		w = DefaultMaxInFlight
	}
	ra := opts.ReadAhead
	if ra <= 0 {
		ra = w
	}
	e := &Engine{
		t: t, w: w, ra: ra,
		inflight:   opts.Obs.Gauge("bulk.inflight"),
		stalls:     opts.Obs.Counter("bulk.window_stalls"),
		batchCalls: opts.Obs.Counter("bulk.batch_calls"),
		batchRPCs:  opts.Obs.Counter("bulk.batch_rpcs"),
	}
	// Coalesce ratio in percent: 100 means no coalescing (one RPC per
	// logical batch-add), 400 means four batch-adds per wire RPC.
	opts.Obs.Func("bulk.coalesce_ratio_pct", func() int64 {
		rpcs := e.batchRPCs.Value()
		if rpcs == 0 {
			return 0
		}
		return int64(100 * e.batchCalls.Value() / rpcs)
	})
	return e
}

// Window returns the configured in-flight window in stripes.
func (e *Engine) Window() int { return e.w }

// --- window ------------------------------------------------------------------

// window is the engine's token pool. Only the single dispatcher
// goroutine of one operation acquires (and every item costs at most
// the full window), so acquisition cannot deadlock; completions
// release from their own goroutines.
type window struct {
	mu   sync.Mutex
	cond *sync.Cond
	free int
}

func (e *Engine) newWindow() *window {
	w := &window{free: e.w}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (e *Engine) acquire(w *window, n int) {
	if n > e.w {
		n = e.w
	}
	w.mu.Lock()
	if w.free < n {
		e.stalls.Inc()
	}
	for w.free < n {
		w.cond.Wait()
	}
	w.free -= n
	w.mu.Unlock()
	e.inflight.Add(int64(n))
}

func (e *Engine) release(w *window, n int) {
	if n > e.w {
		n = e.w
	}
	e.inflight.Add(int64(-n))
	w.mu.Lock()
	w.free += n
	w.cond.Broadcast()
	w.mu.Unlock()
}

// --- write path --------------------------------------------------------------

// writeItem is one schedulable unit of a WriteAt span: either a run of
// full stripes (stripes != nil) or a single whole/partial block.
type writeItem struct {
	off     int // offset into p
	length  int // bytes covered
	stripes []StripeWrite
	addr    uint64 // block item: target block
	within  int    // block item: offset inside the block
}

func (it *writeItem) cost() int {
	if len(it.stripes) > 0 {
		return len(it.stripes)
	}
	return 1
}

// errSkipped marks items never dispatched because an earlier item had
// already failed; it can never be the first error in item order.
var errSkipped = errors.New("bulk: skipped after earlier failure")

// WriteAt writes p at byte offset off, keeping up to MaxInFlight
// stripes of work in flight. The span is decomposed in address order:
// partial first/last blocks are read-modify-written, interior aligned
// blocks are written directly, and stripe-aligned runs go through the
// target's batched stripe write in chunks of up to MaxInFlight stripes
// (cut at group seams). On failure the returned count is the longest
// prefix of the span known written — concurrent items past the first
// failure may also have been written (they are full-block overwrites,
// so the damage is bounded to "later data also arrived"), but nothing
// before the count is lost. The error wraps both ErrShortWrite and the
// underlying cause.
func (e *Engine) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", ErrOutOfRange, off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	bs := e.t.BlockSize()
	if c := e.t.Capacity(); c > 0 {
		if end := uint64(off) + uint64(len(p)); end > c*uint64(bs) {
			return 0, fmt.Errorf("%w: write span [%d,%d) beyond %d-byte capacity", ErrOutOfRange, off, end, c*uint64(bs))
		}
	}
	items := e.decomposeWrite(p, off)

	okBytes := make([]int, len(items)) // bytes confirmed written per item
	errs := make([]error, len(items))
	win := e.newWindow()
	var failed atomic.Bool
	var wg sync.WaitGroup
	stop := false
	for i := range items {
		if stop {
			errs[i] = errSkipped
			continue
		}
		it := &items[i]
		e.acquire(win, it.cost())
		if failed.Load() {
			// Check after the (possibly blocking) acquire so a failure
			// during the stall stops the pipeline promptly.
			e.release(win, it.cost())
			errs[i] = errSkipped
			stop = true
			continue
		}
		wg.Add(1)
		go func(i int, it *writeItem) {
			defer wg.Done()
			defer e.release(win, it.cost())
			okBytes[i], errs[i] = e.runWriteItem(ctx, p, it)
			if errs[i] != nil {
				failed.Store(true)
			}
		}(i, it)
	}
	wg.Wait()

	n := 0
	for i := range items {
		if errs[i] == nil {
			n += items[i].length
			continue
		}
		cause := errs[i]
		n += okBytes[i]
		// The first failed item determines the cause; a skipped item can
		// only follow a real failure, which the loop reports instead.
		for j := i; j < len(items); j++ {
			if errs[j] != nil && !errors.Is(errs[j], errSkipped) {
				cause = errs[j]
				break
			}
		}
		return n, fmt.Errorf("%w: wrote %d of %d bytes at offset %d: %w", ErrShortWrite, n, len(p), off, cause)
	}
	return n, nil
}

// decomposeWrite carves the span into items in address order.
func (e *Engine) decomposeWrite(p []byte, off int64) []writeItem {
	bs := int64(e.t.BlockSize())
	k := int64(e.t.StripeK())
	gb := int64(e.t.GroupBlocks())
	stripeBytes := bs * k
	var items []writeItem
	done := 0
	for done < len(p) {
		pos := off + int64(done)
		within := pos % bs
		addr := pos / bs
		remaining := int64(len(p) - done)
		// GroupBlocks is a multiple of k, so addr%k == (addr%gb)%k:
		// stripe alignment is group-independent.
		if within == 0 && addr%k == 0 && remaining >= stripeBytes {
			run := remaining / stripeBytes
			if gb > 0 {
				if inGroup := (gb - addr%gb) / k; run > inGroup {
					run = inGroup
				}
			}
			for run > 0 {
				chunk := min(run, int64(e.w))
				sw := make([]StripeWrite, chunk)
				for s := int64(0); s < chunk; s++ {
					values := make([][]byte, k)
					base := done + int(s*stripeBytes)
					for b := int64(0); b < k; b++ {
						values[b] = p[base+int(b*bs) : base+int((b+1)*bs)]
					}
					sw[s] = StripeWrite{Addr: uint64(addr + s*k), Values: values}
				}
				items = append(items, writeItem{off: done, length: int(chunk * stripeBytes), stripes: sw})
				done += int(chunk * stripeBytes)
				addr += chunk * k
				run -= chunk
			}
			continue
		}
		size := int(min(remaining, bs-within))
		items = append(items, writeItem{off: done, length: size, addr: uint64(addr), within: int(within)})
		done += size
	}
	return items
}

// runWriteItem executes one item, returning the bytes of its longest
// successfully written prefix and the first error.
func (e *Engine) runWriteItem(ctx context.Context, p []byte, it *writeItem) (int, error) {
	if len(it.stripes) > 0 {
		errs, stats := e.t.WriteStripes(ctx, it.stripes)
		e.batchCalls.Add(stats.BatchCalls)
		e.batchRPCs.Add(stats.BatchRPCs)
		stripeBytes := e.t.BlockSize() * e.t.StripeK()
		for s, err := range errs {
			if err != nil {
				return s * stripeBytes, err
			}
		}
		return it.length, nil
	}
	bs := e.t.BlockSize()
	src := p[it.off : it.off+it.length]
	blk := src
	if it.length != bs {
		old, err := e.t.ReadBlock(ctx, it.addr)
		if err != nil {
			return 0, err
		}
		blk = old
		copy(blk[it.within:], src)
	}
	if err := e.t.WriteBlock(ctx, it.addr, blk); err != nil {
		return 0, err
	}
	return it.length, nil
}

// --- read path ---------------------------------------------------------------

// readSpan is one block's slice of a ReadAt destination buffer.
type readSpan struct {
	addr   uint64
	within int
	dst    []byte
}

// ReadAt reads len(p) bytes at byte offset off. Block fetches fan out
// under the same stripe-denominated window as writes (each in-flight
// group of up to k blocks costs one token), which is what makes large
// sequential reads pipeline across storage nodes. On a bounded target,
// reads past the end are truncated and return io.EOF with the partial
// count. On failure the count is the contiguous prefix that
// definitely succeeded.
func (e *Engine) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", ErrOutOfRange, off)
	}
	bs := int64(e.t.BlockSize())
	eof := false
	if c := e.t.Capacity(); c > 0 {
		capBytes := int64(c) * bs
		if off >= capBytes {
			return 0, io.EOF
		}
		if int64(len(p)) > capBytes-off {
			p = p[:capBytes-off]
			eof = true
		}
	}
	if len(p) == 0 {
		if eof {
			return 0, io.EOF
		}
		return 0, nil
	}

	var spans []readSpan
	for read := 0; read < len(p); {
		pos := off + int64(read)
		within := pos % bs
		size := int(min(int64(len(p)-read), bs-within))
		spans = append(spans, readSpan{addr: uint64(pos / bs), within: int(within), dst: p[read : read+size]})
		read += size
	}

	k := e.t.StripeK()
	errs := make([]error, len(spans))
	win := e.newWindow()
	var wg sync.WaitGroup
	for start := 0; start < len(spans); start += k {
		chunk := spans[start:min(start+k, len(spans))]
		e.acquire(win, 1)
		wg.Add(1)
		go func(start int, chunk []readSpan) {
			defer wg.Done()
			defer e.release(win, 1)
			var cwg sync.WaitGroup
			for i := range chunk {
				cwg.Add(1)
				go func(i int) {
					defer cwg.Done()
					blk, err := e.t.ReadBlock(ctx, chunk[i].addr)
					if err != nil {
						errs[start+i] = err
						return
					}
					copy(chunk[i].dst, blk[chunk[i].within:])
				}(i)
			}
			cwg.Wait()
		}(start, chunk)
	}
	wg.Wait()

	read := 0
	for i, err := range errs {
		if err != nil {
			return read, err
		}
		read += len(spans[i].dst)
	}
	if eof {
		return read, io.EOF
	}
	return read, nil
}

package bulk

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// memTarget is an in-memory bulk.Target: a flat block array with
// configurable geometry, plus instrumentation of how the engine drives
// it (batch shapes, concurrency high-water mark, injected failures).
type memTarget struct {
	bs  int
	k   int
	gb  uint64 // 0 = single unbounded group
	cap uint64 // 0 = unbounded

	mu     sync.Mutex
	blocks map[uint64][]byte

	batches   [][]uint64 // stripe start addrs per WriteStripes call
	inflight  atomic.Int64
	highWater atomic.Int64

	// failStripe, when non-zero, fails the stripe starting at that
	// block address (and, with failWhole, its entire batch).
	failStripe uint64
}

func newMemTarget(bs, k int, gb, capacity uint64) *memTarget {
	return &memTarget{bs: bs, k: k, gb: gb, cap: capacity, blocks: make(map[uint64][]byte)}
}

func (m *memTarget) BlockSize() int      { return m.bs }
func (m *memTarget) StripeK() int        { return m.k }
func (m *memTarget) GroupBlocks() uint64 { return m.gb }
func (m *memTarget) Capacity() uint64    { return m.cap }

func (m *memTarget) ReadBlock(_ context.Context, addr uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]byte, m.bs)
	copy(out, m.blocks[addr])
	return out, nil
}

func (m *memTarget) WriteBlock(_ context.Context, addr uint64, data []byte) error {
	if len(data) != m.bs {
		return fmt.Errorf("bad block size %d", len(data))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocks[addr] = append([]byte(nil), data...)
	return nil
}

func (m *memTarget) enter() {
	if cur := m.inflight.Add(1); cur > m.highWater.Load() {
		m.highWater.Store(cur)
	}
}

func (m *memTarget) WriteStripes(_ context.Context, writes []StripeWrite) ([]error, WriteStats) {
	m.enter()
	defer m.inflight.Add(-1)
	addrs := make([]uint64, len(writes))
	for i, w := range writes {
		addrs[i] = w.Addr
	}
	m.mu.Lock()
	m.batches = append(m.batches, addrs)
	m.mu.Unlock()
	errs := make([]error, len(writes))
	for i, w := range writes {
		if m.failStripe != 0 && w.Addr == m.failStripe {
			errs[i] = errors.New("injected stripe failure")
			continue
		}
		for b, v := range w.Values {
			if err := m.WriteBlock(nil, w.Addr+uint64(b), v); err != nil {
				errs[i] = err
				break
			}
		}
	}
	return errs, WriteStats{BatchCalls: uint64(len(writes)), BatchRPCs: 1}
}

func (m *memTarget) contents(blocks uint64) []byte {
	out := make([]byte, blocks*uint64(m.bs))
	m.mu.Lock()
	defer m.mu.Unlock()
	for addr, blk := range m.blocks {
		copy(out[addr*uint64(m.bs):], blk)
	}
	return out
}

func pattern(n int, seed int64) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

// TestWriteAtSeams drives spans over every alignment hazard — partial
// first/last blocks, group-boundary straddles, sub-block writes — and
// verifies the target ends up byte-identical to a flat reference
// buffer.
func TestWriteAtSeams(t *testing.T) {
	const bs, k = 16, 2
	const gb, groups = 8, 4 // 4 stripes per group
	capacity := uint64(gb * groups)
	spans := []struct {
		off, n int64
	}{
		{0, bs * k},               // one aligned stripe
		{3, 40},                   // partial head and tail
		{gb*bs - 24, 48},          // straddles the group-0/1 boundary
		{bs, bs},                  // single whole block, stripe-unaligned
		{2*gb*bs - 5, gb*bs + 9},  // partial head, group straddle, partial tail
		{0, int64(capacity) * bs}, // the whole volume
	}
	for _, span := range spans {
		t.Run(fmt.Sprintf("off=%d,n=%d", span.off, span.n), func(t *testing.T) {
			m := newMemTarget(bs, k, gb, capacity)
			e := New(m, Options{MaxInFlight: 4})
			ref := make([]byte, capacity*bs)
			base := pattern(len(ref), 7)
			if _, err := e.WriteAt(context.Background(), base, 0); err != nil {
				t.Fatal(err)
			}
			copy(ref, base)

			p := pattern(int(span.n), span.off)
			n, err := e.WriteAt(context.Background(), p, span.off)
			if err != nil || n != len(p) {
				t.Fatalf("WriteAt = %d, %v", n, err)
			}
			copy(ref[span.off:], p)
			if got := m.contents(capacity); !bytes.Equal(got, ref) {
				t.Fatal("target diverged from reference")
			}

			// Every stripe batch must stay within one group.
			m.mu.Lock()
			defer m.mu.Unlock()
			for _, batch := range m.batches {
				g := batch[0] / gb
				for _, addr := range batch {
					if addr/gb != g {
						t.Fatalf("batch %v straddles groups", batch)
					}
					if addr%uint64(k) != 0 {
						t.Fatalf("unaligned stripe addr %d", addr)
					}
				}
			}
		})
	}
}

// TestWriteAtReadAtRoundTrip checks random spans through both paths on
// an unbounded single-group target.
func TestWriteAtReadAtRoundTrip(t *testing.T) {
	const bs, k = 32, 3
	m := newMemTarget(bs, k, 0, 0)
	e := New(m, Options{MaxInFlight: 8})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	ref := make([]byte, 64*bs)
	for i := 0; i < 25; i++ {
		off := rng.Int63n(int64(len(ref) - 1))
		n := 1 + rng.Intn(len(ref)-int(off))
		p := pattern(n, int64(i))
		if wrote, err := e.WriteAt(ctx, p, off); err != nil || wrote != n {
			t.Fatalf("WriteAt = %d, %v", wrote, err)
		}
		copy(ref[off:], p)
	}
	got := make([]byte, len(ref))
	if n, err := e.ReadAt(ctx, got, 0); err != nil || n != len(ref) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("read back diverged")
	}
}

// TestWindowOneIsSequential pins the MaxInFlight=1 contract: exactly
// one work item in flight at any moment and single-stripe batches, so
// the RPC pattern is identical to the old sequential path.
func TestWindowOneIsSequential(t *testing.T) {
	const bs, k = 16, 2
	m := newMemTarget(bs, k, 0, 0)
	e := New(m, Options{MaxInFlight: 1})
	p := pattern(bs*k*12, 3)
	if _, err := e.WriteAt(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	if hw := m.highWater.Load(); hw != 1 {
		t.Fatalf("high-water concurrency = %d, want 1", hw)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.batches) != 12 {
		t.Fatalf("%d batches, want 12", len(m.batches))
	}
	for _, b := range m.batches {
		if len(b) != 1 {
			t.Fatalf("batch of %d stripes under window 1", len(b))
		}
	}
}

// TestWindowPipelines is the inverse: a wide window actually
// overlaps stripe batches and bounds them by the window.
func TestWindowPipelines(t *testing.T) {
	const bs, k = 16, 2
	m := newMemTarget(bs, k, 0, 0)
	e := New(m, Options{MaxInFlight: 4})
	p := pattern(bs*k*64, 3)
	if _, err := e.WriteAt(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range m.batches {
		if len(b) > 4 {
			t.Fatalf("batch of %d stripes exceeds window 4", len(b))
		}
	}
}

// TestWriteAtPrefixOnFailure injects a failing stripe mid-span and
// checks the returned count covers exactly a durable prefix: every
// byte below it reads back as written.
func TestWriteAtPrefixOnFailure(t *testing.T) {
	const bs, k = 16, 2
	const stripes = 32
	m := newMemTarget(bs, k, 0, 0)
	m.failStripe = 20 * k // stripe 20 of the span
	e := New(m, Options{MaxInFlight: 4})
	p := pattern(bs*k*stripes, 5)
	n, err := e.WriteAt(context.Background(), p, 0)
	if err == nil {
		t.Fatal("injected failure not surfaced")
	}
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
	if n >= len(p) || n%(bs*k) != 0 {
		t.Fatalf("n = %d, want a proper stripe-aligned prefix", n)
	}
	got := make([]byte, n)
	if _, err := e.ReadAt(context.Background(), got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p[:n]) {
		t.Fatal("acknowledged prefix lost")
	}
}

// TestReadAtTruncation covers the bounded-target EOF contract.
func TestReadAtTruncation(t *testing.T) {
	const bs, k, capacity = 16, 2, uint64(8)
	m := newMemTarget(bs, k, 8, capacity)
	e := New(m, Options{})
	ctx := context.Background()
	p := pattern(int(capacity)*bs, 1)
	if _, err := e.WriteAt(ctx, p, 0); err != nil {
		t.Fatal(err)
	}
	// Read straddling the end: truncated + EOF.
	got := make([]byte, 3*bs)
	n, err := e.ReadAt(ctx, got, int64(capacity)*int64(bs)-2*int64(bs))
	if err != io.EOF || n != 2*bs {
		t.Fatalf("ReadAt = %d, %v; want %d, EOF", n, err, 2*bs)
	}
	if !bytes.Equal(got[:n], p[len(p)-2*bs:]) {
		t.Fatal("tail mismatch")
	}
	// Entirely past the end.
	if n, err := e.ReadAt(ctx, got, int64(capacity)*int64(bs)); err != io.EOF || n != 0 {
		t.Fatalf("past-end ReadAt = %d, %v", n, err)
	}
	// Write past the end is refused outright.
	if _, err := e.WriteAt(ctx, got, int64(capacity)*int64(bs)-int64(bs)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overflow write err = %v, want ErrOutOfRange", err)
	}
	if _, err := e.WriteAt(ctx, got, -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative offset err = %v, want ErrOutOfRange", err)
	}
}

// TestReaderStreams checks the prefetching Reader against ReadAt, for
// bounded lengths, capacity-bounded tails, and odd consumer buffer
// sizes.
func TestReaderStreams(t *testing.T) {
	const bs, k, capacity = 16, 2, uint64(32)
	m := newMemTarget(bs, k, 0, capacity)
	e := New(m, Options{MaxInFlight: 4, ReadAhead: 2})
	ctx := context.Background()
	p := pattern(int(capacity)*bs, 9)
	if _, err := e.WriteAt(ctx, p, 0); err != nil {
		t.Fatal(err)
	}

	got, err := io.ReadAll(e.Reader(ctx, 5, 100))
	if err != nil || !bytes.Equal(got, p[5:105]) {
		t.Fatalf("bounded stream: %v, %d bytes", err, len(got))
	}

	// Negative length: stream to capacity.
	got, err = io.ReadAll(e.Reader(ctx, 10, -1))
	if err != nil || !bytes.Equal(got, p[10:]) {
		t.Fatalf("to-capacity stream: %v, %d bytes", err, len(got))
	}

	// Tiny consumer reads exercise chunk draining.
	r := e.Reader(ctx, 0, int64(len(p)))
	var buf bytes.Buffer
	tmp := make([]byte, 7)
	for {
		n, err := r.Read(tmp)
		buf.Write(tmp[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf.Bytes(), p) {
		t.Fatal("chunked stream diverged")
	}
}

// TestMetrics spot-checks the bulk.* instrumentation wiring.
func TestMetrics(t *testing.T) {
	const bs, k = 16, 2
	m := newMemTarget(bs, k, 0, 0)
	e := New(m, Options{MaxInFlight: 2})
	p := pattern(bs*k*16, 2)
	if _, err := e.WriteAt(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	if e.batchCalls == nil {
		// Obs nil: counters are no-ops but must not panic — reaching
		// here at all is the assertion.
		return
	}
}

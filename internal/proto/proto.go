// Package proto defines the operation set of the AJX storage protocol:
// the request/reply messages exchanged between client nodes and the
// thin storage nodes, and the StorageNode interface implemented by
// servers and transport stubs alike.
//
// The operations map one-to-one onto the pseudo-code of the paper's
// Figs. 4-7: read, swap, add, checktid (read/write path), trylock,
// setlock, get_state, getrecent, reconstruct, finalize (recovery), and
// gc_old, gc_recent (garbage collection). Probe supports the
// monitoring mechanism of Section 3.10.
package proto

import (
	"context"
	"errors"
	"fmt"
)

// ClientID identifies a client node. IDs are assigned by the
// deployment (directory service or static configuration).
type ClientID uint32

// OpMode is a storage slot's operation mode.
type OpMode uint8

// Operation modes (paper Section 3.7).
const (
	// Norm means the slot holds valid data.
	Norm OpMode = iota + 1
	// Recons means recovery wrote this slot but has not finalized: the
	// block holds recovered data and recons_set names the blocks used.
	Recons
	// Init means the slot holds uninitialized garbage (a freshly
	// remapped replacement node).
	Init
)

func (m OpMode) String() string {
	switch m {
	case Norm:
		return "NORM"
	case Recons:
		return "RECONS"
	case Init:
		return "INIT"
	default:
		return fmt.Sprintf("OpMode(%d)", uint8(m))
	}
}

// LockMode is a storage slot's lock state.
type LockMode uint8

// Lock modes (paper Section 3.7).
const (
	// Unlocked allows swap and add.
	Unlocked LockMode = iota + 1
	// L0 is the partial lock: adds execute, swaps do not.
	L0
	// L1 is the full lock: all mutations are rejected.
	L1
	// Expired marks a lock whose holder crashed; the next client to see
	// it starts recovery.
	Expired
)

func (m LockMode) String() string {
	switch m {
	case Unlocked:
		return "UNL"
	case L0:
		return "L0"
	case L1:
		return "L1"
	case Expired:
		return "EXP"
	default:
		return fmt.Sprintf("LockMode(%d)", uint8(m))
	}
}

// Locked reports whether the mode is one of the two held-lock states.
func (m LockMode) Locked() bool { return m == L0 || m == L1 }

// Status is the outcome of an add, checktid, or garbage-collection
// operation.
type Status uint8

// Status codes. A zero Status is never sent; replies that can fail use
// a dedicated field or StatusUnavail.
const (
	// StatusOK: the operation was applied.
	StatusOK Status = iota + 1
	// StatusOrder: the add must wait for the previous write to the same
	// block (its otid was not yet seen here).
	StatusOrder
	// StatusUnavail: the slot rejected the operation (wrong opmode,
	// lock held, or stale epoch) — the paper's bottom.
	StatusUnavail
	// StatusInit: checktid found the probing write's own tid missing —
	// the node lost its state (crash + remap).
	StatusInit
	// StatusGC: checktid found the awaited otid garbage-collected, so
	// the previous write must have completed everywhere.
	StatusGC
	// StatusNoChange: checktid found both tids still present.
	StatusNoChange
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusOrder:
		return "ORDER"
	case StatusUnavail:
		return "UNAVAIL"
	case StatusInit:
		return "INIT"
	case StatusGC:
		return "GC"
	case StatusNoChange:
		return "NOCHANGE"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// TID uniquely identifies a WRITE: the paper's <seq, i, p> triple.
// The zero TID is "no tid" (bottom).
type TID struct {
	Seq    uint64
	Block  uint32 // stripe slot i being written
	Client ClientID
}

// IsZero reports whether the TID is the distinguished "no tid" value.
func (t TID) IsZero() bool { return t == TID{} }

func (t TID) String() string {
	if t.IsZero() {
		return "tid<none>"
	}
	return fmt.Sprintf("tid<%d,%d,c%d>", t.Seq, t.Block, t.Client)
}

// TIDTime is a recentlist/oldlist entry: a write identifier stamped
// with the storage node's local time.
type TIDTime struct {
	TID  TID
	Time uint64
}

// ErrNodeDown is returned by transports and crashed nodes: the storage
// node is unreachable or has failed. It is a transport-level failure,
// distinct from the protocol-level rejections carried in reply fields.
var ErrNodeDown = errors.New("proto: storage node down")

// ErrDraining is returned by a storage node that is shutting down
// gracefully: it refuses new work while letting in-flight calls
// finish. Unlike ErrNodeDown it is a deliberate, advance notice —
// clients treat it as an instant site-retire (resolve the slot
// elsewhere now) rather than a retry-with-backoff.
var ErrDraining = errors.New("proto: storage node draining")

// ErrDeadlineExceeded is returned when a call's propagated deadline
// budget expired before the node produced a reply: the node sheds the
// work instead of computing an answer nobody is waiting for.
var ErrDeadlineExceeded = errors.New("proto: call deadline exceeded")

// ErrThrottled is returned by an access-layer service (the gateway)
// when a tenant's request exceeds its QoS budget: the request was shed
// before touching storage and is safe to retry after backing off.
// Wrappers may carry a retry-after hint (gateway.ThrottleError).
var ErrThrottled = errors.New("proto: tenant throttled")

// ErrOverloaded is returned when a service sheds load to protect
// itself — its global concurrency limit is exhausted regardless of
// which tenant asks. Unlike ErrThrottled it signals systemic pressure:
// clients should back off multiplicatively, not per-tenant.
var ErrOverloaded = errors.New("proto: service overloaded")

// --- Requests and replies -----------------------------------------------

// ReadReq asks for the block of one stripe slot.
type ReadReq struct {
	Stripe uint64
	Slot   int32
}

// ReadReply carries a block, or OK=false (bottom) with the lock mode
// that explains the rejection. TID identifies the most recent write
// this node has seen for the slot (the newest recentlist entry) at the
// moment the block was read; it is the zero TID when the recentlist is
// empty (all writes garbage-collected, or the slot was never written).
// Client-side caches use it to decide whether a cached block is still
// provably current.
type ReadReply struct {
	OK       bool
	Block    []byte
	LockMode LockMode
	TID      TID
}

// SwapReq atomically replaces the block of a data slot, returning the
// old content.
type SwapReq struct {
	Stripe uint64
	Slot   int32
	Value  []byte
	NTID   TID
}

// SwapReply returns the previous block content on success. OTID is the
// identifier of the previous write to this slot (zero TID if none).
type SwapReply struct {
	OK       bool
	Block    []byte
	Epoch    uint64
	OTID     TID
	LockMode LockMode
}

// AddReq folds a delta into a redundant slot. If Premultiplied, Delta
// is alpha_ji*(v-w) computed by the client; otherwise Delta is the raw
// v-w broadcast payload and the node multiplies by its own coefficient
// for DataSlot (Section 3.11's broadcast optimization). OTID, when
// non-zero, orders this add after the previous write to the same data
// slot. Epoch is the epoch observed by the swap.
type AddReq struct {
	Stripe        uint64
	Slot          int32
	Delta         []byte
	DataSlot      int32
	Premultiplied bool
	NTID          TID
	OTID          TID
	Epoch         uint64
}

// AddReply reports the add outcome plus the slot's modes, which the
// writer inspects to decide between retrying and starting recovery.
type AddReply struct {
	Status   Status // StatusOK, StatusOrder, or StatusUnavail
	OpMode   OpMode
	LockMode LockMode
}

// BatchEntry names one data-slot write contributing to a combined
// batch delta: its own identifier and, optionally, the identifier of
// the previous write to that slot for ordering.
type BatchEntry struct {
	DataSlot int32
	NTID     TID
	OTID     TID
}

// BatchAddReq folds the COMBINED delta of a full-stripe write into a
// redundant slot in one message: Delta = sum_i alpha_ji*(v_i - w_i),
// premultiplied by the client. This is the Section 3.11 sequential-I/O
// optimization: k blocks cost k swaps + p batch-adds instead of
// k*(p+1) messages. The batch applies atomically: either every entry's
// ordering constraint holds and the delta is applied (recording all k
// NTIDs), or nothing is.
type BatchAddReq struct {
	Stripe  uint64
	Slot    int32
	Delta   []byte
	Entries []BatchEntry
	Epoch   uint64
}

// BatchAddReply reports the batch outcome. On StatusOrder, Blockers
// lists the data slots whose previous write has not been seen here.
type BatchAddReply struct {
	Status   Status
	OpMode   OpMode
	LockMode LockMode
	Blockers []int32
}

// BatchAddMultiReq carries several independent batch-adds destined for
// the same storage node — the combined deltas of co-scheduled
// full-stripe writes whose redundant slots happen to live on one site.
// It exists purely to save round trips and framing: each sub-request
// is applied with exactly the semantics of a standalone BatchAdd (its
// own stripe, epoch, and atomicity), and there is NO atomicity across
// sub-requests.
type BatchAddMultiReq struct {
	Adds []*BatchAddReq
}

// BatchAddMultiReply carries one reply per sub-request, in order.
type BatchAddMultiReply struct {
	Replies []*BatchAddReply
}

// MultiBatcher is an optional node capability (like Multicaster):
// deliver several batch-adds in one message. Clients probe for it with
// a type assertion and fall back to parallel unicast BatchAdd calls
// when the node (or a transport wrapper in front of it) lacks it.
type MultiBatcher interface {
	BatchAddMulti(ctx context.Context, req *BatchAddMultiReq) (*BatchAddMultiReply, error)
}

// BatchAddMulti invokes the capability when node supports it and the
// request has more than one sub-call; otherwise it applies the
// sub-requests one at a time. Per-sub-request transport errors are
// impossible in the fallback-free path (the single RPC either delivers
// all replies or fails as a whole), so the fallback mirrors that: the
// first transport error aborts and is returned for the whole call.
func BatchAddMulti(ctx context.Context, node StorageNode, req *BatchAddMultiReq) (*BatchAddMultiReply, error) {
	if mb, ok := node.(MultiBatcher); ok && len(req.Adds) > 1 {
		return mb.BatchAddMulti(ctx, req)
	}
	rep := &BatchAddMultiReply{Replies: make([]*BatchAddReply, len(req.Adds))}
	for i, sub := range req.Adds {
		r, err := node.BatchAdd(ctx, sub)
		if err != nil {
			return nil, err
		}
		rep.Replies[i] = r
	}
	return rep, nil
}

// CheckTIDReq asks whether this node still remembers NTID and OTID
// (garbage-collection-aware ordering, Section 3.9).
type CheckTIDReq struct {
	Stripe uint64
	Slot   int32
	NTID   TID
	OTID   TID
}

// CheckTIDReply carries StatusInit, StatusGC, or StatusNoChange.
type CheckTIDReply struct {
	Status Status
}

// TryLockReq attempts to take the lock in the given mode; it fails if
// the slot is already locked (L0/L1).
type TryLockReq struct {
	Stripe uint64
	Slot   int32
	Mode   LockMode
	Caller ClientID
}

// TryLockReply reports success and the mode the lock had before (so a
// failed multi-node acquisition can restore it).
type TryLockReply struct {
	OK      bool
	OldMode LockMode
}

// SetLockReq unconditionally sets the lock mode (used by the recovery
// coordinator, which already holds the lock).
type SetLockReq struct {
	Stripe uint64
	Slot   int32
	Mode   LockMode
	Caller ClientID
}

// SetLockReply is empty; the operation always succeeds.
type SetLockReply struct{}

// GetStateReq reads the full per-slot recovery state. NoBlock asks the
// node to omit the block payload from the reply (BlockValid still
// reports whether one exists) — the bandwidth-frugal recovery path
// reads state from all n slots but fetches block content through
// partial sums instead.
type GetStateReq struct {
	Stripe  uint64
	Slot    int32
	NoBlock bool
}

// GetStateReply is the paper's get_state: modes, tid lists, the saved
// reconstruction set, and the block. BlockValid is false when the slot
// holds garbage (opmode INIT).
type GetStateReply struct {
	OpMode     OpMode
	LockMode   LockMode
	Epoch      uint64
	ReconsSet  []int32
	OldList    []TIDTime
	RecentList []TIDTime
	Block      []byte
	BlockValid bool
}

// GetRecentReq atomically sets the lock mode and returns the
// recentlist (recovery phase 2's re-lock step).
type GetRecentReq struct {
	Stripe uint64
	Slot   int32
	Mode   LockMode
	Caller ClientID
}

// GetRecentReply carries the recentlist observed at re-lock time.
type GetRecentReply struct {
	RecentList []TIDTime
}

// ReconstructReq writes recovered data and records the consistent set
// used to decode it; the slot enters RECONS mode. With InPlace set the
// node keeps its current block instead of accepting a shipped one
// (Block must be empty): the coordinator certifies that the content
// the node already holds is the recovered value, so shipping it back
// would waste bandwidth. The coordinator only sends InPlace to slots
// whose GetState showed a valid block under its lock.
type ReconstructReq struct {
	Stripe  uint64
	Slot    int32
	CSet    []int32
	Block   []byte
	InPlace bool
}

// ReconstructReply returns the slot's current epoch, which the
// coordinator maxes over all slots before finalizing.
type ReconstructReply struct {
	Epoch uint64
}

// FinalizeReq completes recovery: bump the epoch, clear tid lists,
// return to NORM, unlock.
type FinalizeReq struct {
	Stripe uint64
	Slot   int32
	Epoch  uint64
}

// FinalizeReply is empty.
type FinalizeReply struct{}

// GCOldReq discards the listed tids from the oldlist (GC phase 1).
type GCOldReq struct {
	Stripe uint64
	Slot   int32
	TIDs   []TID
}

// GCRecentReq moves the listed tids from recentlist to oldlist (GC
// phase 2).
type GCRecentReq struct {
	Stripe uint64
	Slot   int32
	TIDs   []TID
}

// GCReply carries StatusOK, or StatusUnavail when the slot is locked
// or not in NORM mode.
type GCReply struct {
	Status Status
}

// PartialSumReq asks a storage node to apply a decode coefficient to
// its block locally and fold the result into a running sum:
//
//	Sum = Coef * block  XOR  Acc
//
// over GF(2^8). Acc is the accumulated contribution of upstream
// survivors along an aggregation tree (nil at the leaf). This is the
// bandwidth-frugal reconstruction primitive: instead of each of k
// survivors shipping a full block to the recovery coordinator (k*B
// bytes into one link), survivors combine coefficient-multiplied
// contributions along the tree and only the final B-byte sum reaches
// the coordinator.
type PartialSumReq struct {
	Stripe uint64
	Slot   int32
	Coef   byte
	Acc    []byte
}

// PartialSumReply carries the folded sum, or OK=false when the slot
// cannot contribute (INIT mode, or Acc length does not match the
// block).
type PartialSumReply struct {
	OK       bool
	Sum      []byte
	OpMode   OpMode
	LockMode LockMode
}

// PartialSummer is an optional node capability (like MultiBatcher):
// serve coefficient-multiplied partial sums for frugal reconstruction.
// Clients probe for it with a type assertion and fall back to shipping
// whole blocks when the node (or a transport wrapper in front of it)
// lacks it.
type PartialSummer interface {
	PartialSum(ctx context.Context, req *PartialSumReq) (*PartialSumReply, error)
}

// ErrNoPartialSum reports that a node lacks the PartialSummer
// capability; callers fall back to fetching whole blocks.
var ErrNoPartialSum = errors.New("proto: node does not support partial sums")

// PartialSum invokes the capability when node supports it and returns
// ErrNoPartialSum otherwise. Transport wrappers forward through this
// helper so a wrapped node's capability (or its absence) shows through
// the wrapper unchanged.
func PartialSum(ctx context.Context, node StorageNode, req *PartialSumReq) (*PartialSumReply, error) {
	if ps, ok := node.(PartialSummer); ok {
		return ps.PartialSum(ctx, req)
	}
	return nil, ErrNoPartialSum
}

// PartialCall names one survivor's contribution to an aggregated
// partial-sum: the node and the coefficient it should apply.
type PartialCall struct {
	Node StorageNode
	Req  *PartialSumReq
}

// Aggregator is an optional transport capability (like Multicaster):
// execute a chain of partial-sum calls along an aggregation tree the
// transport itself owns, returning only the final combined sum. The
// coordinator's link carries the small requests and one block-sized
// reply; the survivor-to-survivor hops happen inside the transport.
// Every named node must support PartialSummer; if any leg fails the
// whole aggregation fails and the caller falls back to fetching whole
// blocks.
type Aggregator interface {
	AggregateSum(ctx context.Context, calls []PartialCall) ([]byte, error)
}

// ProbeReq supports the monitoring mechanism: a cheap summary of slot
// health.
type ProbeReq struct {
	Stripe uint64
	Slot   int32
}

// ProbeReply reports the slot modes, the number of recentlist entries,
// and the age (in the node's time units) of the oldest recentlist
// entry — a long-lived entry indicates a started but unfinished write.
type ProbeReply struct {
	OpMode      OpMode
	LockMode    LockMode
	RecentCount int32
	OldestAge   uint64
	HasRecent   bool
	Epoch       uint64
}

// StorageNode is the complete thin-server operation set. Every method
// returns a transport/availability error (notably ErrNodeDown) or a
// reply; protocol-level rejections travel inside replies.
type StorageNode interface {
	Read(ctx context.Context, req *ReadReq) (*ReadReply, error)
	Swap(ctx context.Context, req *SwapReq) (*SwapReply, error)
	Add(ctx context.Context, req *AddReq) (*AddReply, error)
	BatchAdd(ctx context.Context, req *BatchAddReq) (*BatchAddReply, error)
	CheckTID(ctx context.Context, req *CheckTIDReq) (*CheckTIDReply, error)
	TryLock(ctx context.Context, req *TryLockReq) (*TryLockReply, error)
	SetLock(ctx context.Context, req *SetLockReq) (*SetLockReply, error)
	GetState(ctx context.Context, req *GetStateReq) (*GetStateReply, error)
	GetRecent(ctx context.Context, req *GetRecentReq) (*GetRecentReply, error)
	Reconstruct(ctx context.Context, req *ReconstructReq) (*ReconstructReply, error)
	Finalize(ctx context.Context, req *FinalizeReq) (*FinalizeReply, error)
	GCOld(ctx context.Context, req *GCOldReq) (*GCReply, error)
	GCRecent(ctx context.Context, req *GCRecentReq) (*GCReply, error)
	Probe(ctx context.Context, req *ProbeReq) (*ProbeReply, error)
}

// AddCall pairs an add request with its destination for multicast
// delivery.
type AddCall struct {
	Node StorageNode
	Req  *AddReq
}

// AddResult is one multicast outcome.
type AddResult struct {
	Reply *AddReply
	Err   error
}

// Multicaster is an optional transport capability: deliver one add
// payload to many nodes while charging the sender's bandwidth for the
// payload only once (the paper's broadcast optimization). Transports
// without the capability let the client fall back to parallel unicast.
type Multicaster interface {
	MulticastAdd(ctx context.Context, calls []AddCall) []AddResult
}

// TIDsOf extracts the TIDs from a tid-time list (the paper's tids()
// helper).
func TIDsOf(list []TIDTime) []TID {
	if len(list) == 0 {
		return nil
	}
	out := make([]TID, len(list))
	for i, e := range list {
		out[i] = e.TID
	}
	return out
}

// ContainsTID reports whether the tid-time list contains the tid.
func ContainsTID(list []TIDTime, tid TID) bool {
	for _, e := range list {
		if e.TID == tid {
			return true
		}
	}
	return false
}

package proto

import (
	"strings"
	"testing"
)

func TestOpModeStrings(t *testing.T) {
	tests := map[OpMode]string{
		Norm: "NORM", Recons: "RECONS", Init: "INIT", OpMode(9): "OpMode(9)",
	}
	for m, want := range tests {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestLockModeStrings(t *testing.T) {
	tests := map[LockMode]string{
		Unlocked: "UNL", L0: "L0", L1: "L1", Expired: "EXP", LockMode(9): "LockMode(9)",
	}
	for m, want := range tests {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestLocked(t *testing.T) {
	if Unlocked.Locked() || Expired.Locked() {
		t.Error("UNL/EXP report locked")
	}
	if !L0.Locked() || !L1.Locked() {
		t.Error("L0/L1 report unlocked")
	}
}

func TestStatusStrings(t *testing.T) {
	tests := map[Status]string{
		StatusOK: "OK", StatusOrder: "ORDER", StatusUnavail: "UNAVAIL",
		StatusInit: "INIT", StatusGC: "GC", StatusNoChange: "NOCHANGE",
		Status(99): "Status(99)",
	}
	for s, want := range tests {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestTIDZeroAndString(t *testing.T) {
	var zero TID
	if !zero.IsZero() {
		t.Error("zero TID not IsZero")
	}
	if zero.String() != "tid<none>" {
		t.Errorf("zero TID string = %q", zero.String())
	}
	tid := TID{Seq: 7, Block: 2, Client: 3}
	if tid.IsZero() {
		t.Error("non-zero TID IsZero")
	}
	if !strings.Contains(tid.String(), "7") || !strings.Contains(tid.String(), "c3") {
		t.Errorf("TID string = %q", tid.String())
	}
}

func TestTIDsOf(t *testing.T) {
	if TIDsOf(nil) != nil {
		t.Error("TIDsOf(nil) != nil")
	}
	list := []TIDTime{
		{TID: TID{Seq: 1, Client: 1}, Time: 10},
		{TID: TID{Seq: 2, Client: 1}, Time: 20},
	}
	got := TIDsOf(list)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("TIDsOf = %v", got)
	}
}

func TestContainsTID(t *testing.T) {
	list := []TIDTime{{TID: TID{Seq: 5, Client: 2}, Time: 1}}
	if !ContainsTID(list, TID{Seq: 5, Client: 2}) {
		t.Error("present tid not found")
	}
	if ContainsTID(list, TID{Seq: 6, Client: 2}) {
		t.Error("absent tid found")
	}
	if ContainsTID(nil, TID{}) {
		t.Error("empty list contains something")
	}
}

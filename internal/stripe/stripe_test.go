package stripe

import (
	"testing"
	"testing/quick"
)

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(0, 4); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewLayout(4, 4); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := NewLayout(5, 4); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := NewLayout(2, 4); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
}

func TestMustLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLayout(4, 4) did not panic")
		}
	}()
	MustLayout(4, 4)
}

func TestLocateLogicalRoundTrip(t *testing.T) {
	l := MustLayout(3, 5)
	err := quick.Check(func(b uint64) bool {
		s, slot := l.Locate(b)
		return l.Logical(s, slot) == b && slot >= 0 && slot < l.K()
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestConsecutiveBlocksSpreadOverNodes(t *testing.T) {
	// Section 3.11: consecutive logical blocks must land on different
	// physical nodes so sequential I/O pipelines across the cluster.
	l := MustLayout(3, 5)
	prevNode := -1
	for b := uint64(0); b < 30; b++ {
		s, slot := l.Locate(b)
		node := l.PhysicalNode(s, slot)
		if node == prevNode {
			t.Fatalf("blocks %d and %d share node %d", b-1, b, node)
		}
		prevNode = node
	}
}

func TestRedundancyRotates(t *testing.T) {
	// The parity slots must not pin to the same physical nodes for
	// every stripe.
	l := MustLayout(2, 4)
	first := l.PhysicalNode(0, 2)
	rotated := false
	for s := uint64(1); s < 4; s++ {
		if l.PhysicalNode(s, 2) != first {
			rotated = true
		}
	}
	if !rotated {
		t.Fatal("redundant slot 2 maps to the same node for all stripes")
	}
}

func TestPhysicalSlotInverse(t *testing.T) {
	l := MustLayout(3, 7)
	for s := uint64(0); s < 20; s++ {
		for slot := 0; slot < l.N(); slot++ {
			phys := l.PhysicalNode(s, slot)
			if phys < 0 || phys >= l.N() {
				t.Fatalf("PhysicalNode out of range: %d", phys)
			}
			if got := l.SlotOnNode(s, phys); got != slot {
				t.Fatalf("SlotOnNode(%d, %d) = %d, want %d", s, phys, got, slot)
			}
		}
	}
}

func TestStripeSlotsBijective(t *testing.T) {
	// For one stripe, the n slots must occupy n distinct physical nodes.
	l := MustLayout(4, 6)
	for s := uint64(0); s < 12; s++ {
		seen := make(map[int]bool)
		for slot := 0; slot < l.N(); slot++ {
			p := l.PhysicalNode(s, slot)
			if seen[p] {
				t.Fatalf("stripe %d: node %d serves two slots", s, p)
			}
			seen[p] = true
		}
	}
}

func TestIsDataAndRedundantSlots(t *testing.T) {
	l := MustLayout(2, 5)
	for slot := 0; slot < 2; slot++ {
		if !l.IsData(slot) {
			t.Errorf("IsData(%d) = false", slot)
		}
	}
	for slot := 2; slot < 5; slot++ {
		if l.IsData(slot) {
			t.Errorf("IsData(%d) = true", slot)
		}
	}
	if l.IsData(-1) || l.IsData(5) {
		t.Error("IsData out of range must be false")
	}
	rs := l.RedundantSlots()
	if len(rs) != 3 || rs[0] != 2 || rs[2] != 4 {
		t.Errorf("RedundantSlots = %v", rs)
	}
}

func TestPanicsOnOutOfRange(t *testing.T) {
	l := MustLayout(2, 4)
	for name, fn := range map[string]func(){
		"Logical":      func() { l.Logical(0, 2) },
		"PhysicalNode": func() { l.PhysicalNode(0, 4) },
		"SlotOnNode":   func() { l.SlotOnNode(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Package stripe maps a flat logical-block address space onto erasure
// code stripes and physical storage nodes.
//
// Following Section 3.11 of the paper, consecutive logical blocks are
// mapped to different storage nodes and different stripes, and the
// redundant blocks rotate with each stripe so no node becomes a parity
// bottleneck during sequential I/O:
//
//	logical block b  ->  stripe b/k, data slot b%k
//	(stripe s, slot j) -> physical node (j + s) mod n
//
// Slots 0..k-1 of a stripe hold data; slots k..n-1 hold redundancy.
// Applications never see any of this: they address logical blocks.
package stripe

import "fmt"

// Layout describes the striping of a volume over n storage nodes with
// a k-of-n code.
type Layout struct {
	k, n int
}

// NewLayout builds a layout. It requires 1 <= k < n.
func NewLayout(k, n int) (Layout, error) {
	if k < 1 || n <= k {
		return Layout{}, fmt.Errorf("stripe: invalid layout k=%d n=%d", k, n)
	}
	return Layout{k: k, n: n}, nil
}

// MustLayout is NewLayout for static configurations.
func MustLayout(k, n int) Layout {
	l, err := NewLayout(k, n)
	if err != nil {
		panic(err)
	}
	return l
}

// K returns the number of data slots per stripe.
func (l Layout) K() int { return l.k }

// N returns the total number of slots per stripe.
func (l Layout) N() int { return l.n }

// Locate maps a logical block to its stripe and data slot.
func (l Layout) Locate(logical uint64) (stripeID uint64, slot int) {
	return logical / uint64(l.k), int(logical % uint64(l.k))
}

// Logical maps a (stripe, data slot) pair back to the logical block.
func (l Layout) Logical(stripeID uint64, slot int) uint64 {
	if slot < 0 || slot >= l.k {
		panic(fmt.Sprintf("stripe: Logical slot %d out of range [0,%d)", slot, l.k))
	}
	return stripeID*uint64(l.k) + uint64(slot)
}

// PhysicalNode maps a stripe slot to the physical node index serving
// it, applying per-stripe rotation so redundancy slots move around the
// node set.
func (l Layout) PhysicalNode(stripeID uint64, slot int) int {
	if slot < 0 || slot >= l.n {
		panic(fmt.Sprintf("stripe: PhysicalNode slot %d out of range [0,%d)", slot, l.n))
	}
	return (slot + int(stripeID%uint64(l.n))) % l.n
}

// SlotOnNode is the inverse of PhysicalNode: the stripe slot that the
// given physical node serves for the given stripe.
func (l Layout) SlotOnNode(stripeID uint64, phys int) int {
	if phys < 0 || phys >= l.n {
		panic(fmt.Sprintf("stripe: SlotOnNode node %d out of range [0,%d)", phys, l.n))
	}
	return ((phys-int(stripeID%uint64(l.n)))%l.n + l.n) % l.n
}

// IsData reports whether a stripe slot holds application data.
func (l Layout) IsData(slot int) bool { return slot >= 0 && slot < l.k }

// RedundantSlots returns the redundant slot indices k..n-1.
func (l Layout) RedundantSlots() []int {
	out := make([]int, l.n-l.k)
	for i := range out {
		out[i] = l.k + i
	}
	return out
}

package readcache

import (
	"sync"
	"testing"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
)

func tid(seq uint64) proto.TID {
	return proto.TID{Seq: seq, Block: 0, Client: 7}
}

func blk(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestFillAndHit(t *testing.T) {
	c := New(1<<20, nil)
	if _, _, ok := c.Get(3); ok {
		t.Fatal("hit on empty cache")
	}
	tk := c.BeginFill(3)
	if !c.CommitFill(tk, blk('a', 64), tid(1)) {
		t.Fatal("clean fill refused")
	}
	v, st, ok := c.Get(3)
	if !ok || string(v) != string(blk('a', 64)) || st != tid(1) {
		t.Fatalf("got %q/%v/%v", v, st, ok)
	}
	// Returned slice is a copy: mutating it must not poison the cache.
	v[0] = 'Z'
	v2, _, _ := c.Get(3)
	if v2[0] != 'a' {
		t.Fatal("Get returned an aliased slice")
	}
	if c.Stats().Hits.Load() != 2 || c.Stats().Misses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Stats().Hits.Load(), c.Stats().Misses.Load())
	}
}

func TestZeroStampsNeverChain(t *testing.T) {
	c := New(1<<20, nil)
	// An entry cached under the zero stamp (e.g. a fill the caller
	// should have skipped) must not chain-match a write whose OTID is
	// also zero: zero means "no identifier", so zero==zero proves
	// nothing about serialization order.
	tk := c.BeginFill(3)
	if !c.CommitFill(tk, blk('a', 32), proto.TID{}) {
		t.Fatal("fill refused")
	}
	c.Install(3, blk('b', 32), tid(1), proto.TID{})
	if c.Stats().ChainBreaks.Load() != 1 || c.Stats().ChainInstalls.Load() != 0 {
		t.Fatalf("zero==zero treated as a provable chain: breaks=%d installs=%d",
			c.Stats().ChainBreaks.Load(), c.Stats().ChainInstalls.Load())
	}
	if _, _, ok := c.Get(3); ok {
		t.Fatal("entry survived an unprovable install")
	}
}

func TestChainInstallReplacesProvableSuccessor(t *testing.T) {
	c := New(1<<20, nil)
	tk := c.BeginFill(9)
	c.CommitFill(tk, blk('a', 32), tid(1))
	// Write chained directly onto the cached stamp: replaced in place.
	c.Install(9, blk('b', 32), tid(2), tid(1))
	v, st, ok := c.Get(9)
	if !ok || v[0] != 'b' || st != tid(2) {
		t.Fatalf("chain install: got %q/%v/%v", v, st, ok)
	}
	if c.Stats().ChainInstalls.Load() != 1 {
		t.Fatal("chain install not counted")
	}
}

func TestChainBreakInvalidates(t *testing.T) {
	c := New(1<<20, nil)
	tk := c.BeginFill(9)
	c.CommitFill(tk, blk('a', 32), tid(5))
	// otid does not match the cached stamp: ordering unprovable, the
	// entry must go, and the write's value must NOT be served.
	c.Install(9, blk('b', 32), tid(7), tid(6))
	if _, _, ok := c.Get(9); ok {
		t.Fatal("entry survived an unprovable install")
	}
	if c.Stats().ChainBreaks.Load() != 1 {
		t.Fatal("chain break not counted")
	}
}

func TestOutOfOrderCompletionsNeverLeaveStaleValue(t *testing.T) {
	// Node serialization: P(tid=1), then W1(ntid=2,otid=1), then
	// W2(ntid=3,otid=2). Completion notifications arrive inverted: W2
	// first (chain break empties the slot), then the overwritten W1 —
	// which must NOT repopulate the empty slot.
	c := New(1<<20, nil)
	tk := c.BeginFill(4)
	c.CommitFill(tk, blk('p', 16), tid(1))
	c.Install(4, blk('2', 16), tid(3), tid(2)) // W2 lands first: unprovable, break
	if _, _, ok := c.Get(4); ok {
		t.Fatal("entry survived an unprovable install")
	}
	c.Install(4, blk('1', 16), tid(2), tid(1)) // stale W1 arrives late
	if v, _, ok := c.Get(4); ok {
		t.Fatalf("stale write %q repopulated the slot its successor emptied", v)
	}
	if c.Stats().ChainOrphans.Load() != 1 {
		t.Fatalf("chain orphans = %d, want 1", c.Stats().ChainOrphans.Load())
	}
}

func TestInFlightFillPoisonedByWrite(t *testing.T) {
	c := New(1<<20, nil)
	tk := c.BeginFill(11)
	// A write completes while the fill's read is in flight: the fill's
	// value may predate the write and must be discarded. The write
	// itself installs nothing (no cached predecessor), so the slot
	// stays empty until a later stamped read.
	c.Install(11, blk('w', 16), tid(9), proto.TID{})
	if c.CommitFill(tk, blk('r', 16), proto.TID{}) {
		t.Fatal("poisoned fill committed")
	}
	if _, _, ok := c.Get(11); ok {
		t.Fatal("orphan write's value must not be served")
	}
	if c.Stats().FillsPoisoned.Load() != 1 {
		t.Fatal("poisoned fill not counted")
	}
}

func TestInFlightFillPoisonedByInvalidate(t *testing.T) {
	c := New(1<<20, nil)
	tk := c.BeginFill(11)
	c.Invalidate(11)
	if c.CommitFill(tk, blk('r', 16), tid(1)) {
		t.Fatal("fill committed across an invalidation")
	}
	if _, _, ok := c.Get(11); ok {
		t.Fatal("cache should be empty")
	}
}

func TestAbortFillReleasesTicket(t *testing.T) {
	c := New(1<<20, nil)
	tk := c.BeginFill(2)
	c.AbortFill(tk)
	// A later clean fill must succeed (no leaked poison state).
	tk2 := c.BeginFill(2)
	if !c.CommitFill(tk2, blk('x', 8), tid(1)) {
		t.Fatal("fill after abort refused")
	}
	s := c.shard(2)
	s.mu.Lock()
	n := len(s.fills)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("fill registry leaked %d entries", n)
	}
}

func TestConcurrentFillsOnlyOneGeneration(t *testing.T) {
	c := New(1<<20, nil)
	t1 := c.BeginFill(5)
	t2 := c.BeginFill(5)
	if !c.CommitFill(t1, blk('a', 8), tid(1)) {
		t.Fatal("first fill refused")
	}
	// Same generation: the second fill raced no write, committing its
	// (equally valid) value is fine.
	if !c.CommitFill(t2, blk('a', 8), tid(1)) {
		t.Fatal("sibling fill refused")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1<<20, nil)
	tk := c.BeginFill(1)
	c.CommitFill(tk, blk('a', 8), tid(1))
	c.Invalidate(1)
	if _, _, ok := c.Get(1); ok {
		t.Fatal("entry survived invalidation")
	}
	if c.Stats().Invalidations.Load() != 1 {
		t.Fatal("invalidation not counted")
	}
}

func TestLRUEviction(t *testing.T) {
	const bs = 1024
	// Budget for ~4 blocks per shard; all addresses below map through
	// the same shard only probabilistically, so drive one shard
	// directly by using addresses that hash to it.
	c := New(nShards*4*bs, nil)
	target := c.shard(0)
	addrs := []uint64{}
	for a := uint64(0); len(addrs) < 8; a++ {
		if c.shard(a) == target {
			addrs = append(addrs, a)
		}
	}
	for i, a := range addrs {
		tk := c.BeginFill(a)
		c.CommitFill(tk, blk(byte(i), bs), tid(uint64(i+1)))
	}
	if c.Stats().Evictions.Load() == 0 {
		t.Fatal("no evictions past capacity")
	}
	// The most recently touched address must survive.
	if _, _, ok := c.Get(addrs[len(addrs)-1]); !ok {
		t.Fatal("most recent entry evicted")
	}
	target.mu.Lock()
	over := target.bytes > c.capShard
	target.mu.Unlock()
	if over {
		t.Fatalf("shard bytes %d over budget %d", target.bytes, c.capShard)
	}
}

func TestObsRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(1<<20, reg)
	tk := c.BeginFill(1)
	c.CommitFill(tk, blk('a', 100), tid(1))
	c.Get(1)
	snap := reg.Snapshot()
	if snap["readcache.hits"].(int64) != 1 {
		t.Fatalf("readcache.hits = %v", snap["readcache.hits"])
	}
	if snap["readcache.bytes"].(int64) != 100 {
		t.Fatalf("readcache.bytes = %v", snap["readcache.bytes"])
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	c := New(1<<16, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				addr := uint64(i % 37)
				switch g % 4 {
				case 0:
					c.Get(addr)
				case 1:
					tk := c.BeginFill(addr)
					if i%2 == 0 {
						c.CommitFill(tk, blk(byte(i), 64), tid(uint64(i)))
					} else {
						c.AbortFill(tk)
					}
				case 2:
					c.Install(addr, blk(byte(i), 64), tid(uint64(i+1)), tid(uint64(i)))
				default:
					c.Invalidate(addr)
				}
			}
		}(g)
	}
	wg.Wait()
	// Accounting must still balance.
	var bytes int64
	var count int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var sb int64
		for _, e := range s.entries {
			sb += int64(len(e.val))
		}
		if sb != s.bytes {
			s.mu.Unlock()
			t.Fatalf("shard %d bytes drifted: %d != %d", i, sb, s.bytes)
		}
		bytes += sb
		count += len(s.entries)
		if len(s.fills) != 0 {
			s.mu.Unlock()
			t.Fatalf("shard %d leaked %d fill registrations", i, len(s.fills))
		}
		s.mu.Unlock()
	}
	if bytes != c.Bytes() || count != c.Len() {
		t.Fatalf("global accounting drifted: %d/%d vs %d/%d", bytes, count, c.Bytes(), c.Len())
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := New(64<<20, nil)
	const bs = 4096
	for a := uint64(0); a < 64; a++ {
		tk := c.BeginFill(a)
		c.CommitFill(tk, blk(byte(a), bs), tid(a+1))
	}
	b.SetBytes(bs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Get(uint64(i) % 64); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCacheInstall(b *testing.B) {
	// Measures the chain-install path: every Install's otid matches the
	// entry's current stamp, so each replaces its predecessor in place.
	c := New(64<<20, nil)
	const bs = 4096
	last := make([]uint64, 64)
	for a := uint64(0); a < 64; a++ {
		tk := c.BeginFill(a)
		c.CommitFill(tk, blk(byte(a), bs), tid(a))
		last[a] = a
	}
	v := blk('x', bs)
	b.SetBytes(bs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint64(i) % 64
		nt := uint64(64 + i)
		c.Install(a, v, tid(nt), tid(last[a]))
		last[a] = nt
	}
}

// Package readcache is the client-side hot-read cache of the
// small-write tier: a sharded, byte-bounded LRU over block addresses
// whose invalidation is driven by the write identifiers (TIDs) that
// flow on every protocol reply, not by TTLs.
//
// Regular-register safety rests on three rules:
//
//  1. Only PRIMARY reads fill the cache — blocks that came straight
//     from the data node's reply, stamped with the newest recentlist
//     TID the node held at read time. Hedged, degraded, and
//     reconstructed reads never fill (their content is correct but
//     carries no stamp to chain later writes onto).
//  2. A completed write W(ntid, otid) may REPLACE a cached entry only
//     when the entry's stamp equals otid — the node itself serialized
//     W directly after the cached content, so the replacement is
//     provably the successor even when completion notifications arrive
//     out of node order. Zero stamps never match (the zero TID means
//     "no identifier", so zero==zero proves nothing). Any other stamp
//     invalidates, and a write that finds no entry installs NOTHING:
//     with no cached predecessor to chain onto there is no proof a
//     newer write hasn't already been serialized (and chain-broken its
//     way through) since, so only stamped reads may (re)populate an
//     empty slot.
//  3. A fill that was in flight while any write or invalidation
//     touched the same address is poisoned and discarded: the fetched
//     block may predate the write, and committing it would resurrect
//     stale content.
//
// The cache is scoped to one process (all handles of a Store share
// it), which is exactly the coherence domain the stamps can prove
// things about; cross-process writers are caught by rule 2's mismatch
// path the next time any local write or primary read touches the
// address.
package readcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
)

const nShards = 16

// Stats counts cache events, readable concurrently.
type Stats struct {
	Hits          atomic.Uint64
	Misses        atomic.Uint64
	Fills         atomic.Uint64
	FillsPoisoned atomic.Uint64
	ChainInstalls atomic.Uint64 // write replaced its provable predecessor in place
	ChainBreaks   atomic.Uint64 // write found an unprovable stamp and invalidated
	ChainOrphans  atomic.Uint64 // write found no entry; nothing installed (only reads fill)
	Invalidations atomic.Uint64
	Evictions     atomic.Uint64
}

type entry struct {
	addr uint64
	val  []byte
	tid  proto.TID
	ele  *list.Element
}

type fillState struct {
	gen  uint64 // bumped by every Install/Invalidate on the address
	refs int
}

type shard struct {
	mu      sync.Mutex
	entries map[uint64]*entry
	lru     *list.List // front = most recent
	bytes   int64
	fills   map[uint64]*fillState
}

// Cache is a TID-chained LRU block cache. All methods are safe for
// concurrent use.
type Cache struct {
	shards   [nShards]shard
	capShard int64
	stats    Stats
	bytes    atomic.Int64
	count    atomic.Int64
}

// FillTicket is an in-flight fill registration: it pins the address's
// poison generation observed when the read was issued.
type FillTicket struct {
	addr uint64
	gen  uint64
	ok   bool
}

// New returns a cache bounded to roughly capacityBytes of block
// payload (split evenly across shards). Metrics are registered under
// readcache.* when reg is non-nil.
func New(capacityBytes int64, reg *obs.Registry) *Cache {
	c := &Cache{capShard: capacityBytes / nShards}
	if c.capShard <= 0 {
		c.capShard = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[uint64]*entry)
		c.shards[i].lru = list.New()
		c.shards[i].fills = make(map[uint64]*fillState)
	}
	if reg != nil {
		reg.Func("readcache.hits", func() int64 { return int64(c.stats.Hits.Load()) })
		reg.Func("readcache.misses", func() int64 { return int64(c.stats.Misses.Load()) })
		reg.Func("readcache.fills", func() int64 { return int64(c.stats.Fills.Load()) })
		reg.Func("readcache.fills_poisoned", func() int64 { return int64(c.stats.FillsPoisoned.Load()) })
		reg.Func("readcache.chain_installs", func() int64 { return int64(c.stats.ChainInstalls.Load()) })
		reg.Func("readcache.chain_breaks", func() int64 { return int64(c.stats.ChainBreaks.Load()) })
		reg.Func("readcache.chain_orphans", func() int64 { return int64(c.stats.ChainOrphans.Load()) })
		reg.Func("readcache.invalidations", func() int64 { return int64(c.stats.Invalidations.Load()) })
		reg.Func("readcache.evictions", func() int64 { return int64(c.stats.Evictions.Load()) })
		reg.Func("readcache.bytes", func() int64 { return c.bytes.Load() })
		reg.Func("readcache.entries", func() int64 { return c.count.Load() })
	}
	return c
}

// Stats exposes the cache's event counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// Bytes returns the cached payload bytes.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// Len returns the number of cached entries.
func (c *Cache) Len() int { return int(c.count.Load()) }

func (c *Cache) shard(addr uint64) *shard {
	// Multiplicative hash: sequential block addresses spread across
	// shards instead of clustering.
	h := addr * 0x9e3779b97f4a7c15
	return &c.shards[h>>60&(nShards-1)]
}

// Get returns a copy of the cached block for addr, with the stamp it
// was cached under. Callers own the returned slice (the bulk engine
// mutates read results in place during sub-block merges).
func (c *Cache) Get(addr uint64) ([]byte, proto.TID, bool) {
	s := c.shard(addr)
	s.mu.Lock()
	e, ok := s.entries[addr]
	if !ok {
		s.mu.Unlock()
		c.stats.Misses.Add(1)
		return nil, proto.TID{}, false
	}
	s.lru.MoveToFront(e.ele)
	out := make([]byte, len(e.val))
	copy(out, e.val)
	tid := e.tid
	s.mu.Unlock()
	c.stats.Hits.Add(1)
	return out, tid, true
}

// BeginFill registers an in-flight read-miss fill for addr. The caller
// must finish the ticket with exactly one CommitFill or AbortFill.
func (c *Cache) BeginFill(addr uint64) FillTicket {
	s := c.shard(addr)
	s.mu.Lock()
	fs, ok := s.fills[addr]
	if !ok {
		fs = &fillState{}
		s.fills[addr] = fs
	}
	fs.refs++
	t := FillTicket{addr: addr, gen: fs.gen, ok: true}
	s.mu.Unlock()
	return t
}

func (s *shard) releaseFill(addr uint64) *fillState {
	fs := s.fills[addr]
	if fs == nil {
		return nil
	}
	if fs.refs--; fs.refs <= 0 {
		delete(s.fills, addr)
	}
	return fs
}

// CommitFill installs the fetched block under the ticket, unless a
// write or invalidation touched the address while the read was in
// flight (the ticket is poisoned and the value discarded). It reports
// whether the value was installed.
func (c *Cache) CommitFill(t FillTicket, val []byte, tid proto.TID) bool {
	if !t.ok {
		return false
	}
	s := c.shard(t.addr)
	s.mu.Lock()
	fs := s.releaseFill(t.addr)
	if fs == nil || fs.gen != t.gen {
		s.mu.Unlock()
		c.stats.FillsPoisoned.Add(1)
		return false
	}
	c.install(s, t.addr, val, tid)
	s.mu.Unlock()
	c.stats.Fills.Add(1)
	return true
}

// AbortFill releases the ticket without installing anything.
func (c *Cache) AbortFill(t FillTicket) {
	if !t.ok {
		return
	}
	s := c.shard(t.addr)
	s.mu.Lock()
	s.releaseFill(t.addr)
	s.mu.Unlock()
}

// Install records the value of a write that completed with identifier
// ntid, chained onto predecessor otid (the swap's OTID). The entry is
// replaced in place when its stamp equals otid and invalidated on any
// other stamp — an unprovable ordering must never survive in the
// cache. A zero otid or a zero cached stamp is a chain BREAK, never a
// match: the zero TID is the protocol's "no identifier" value (an
// unwritten block, or a recentlist trimmed by GC), so zero==zero
// proves nothing — in particular it must not chain across a
// cross-process writer whose TID the recentlist already dropped. A
// write that finds no entry installs nothing: a delayed completion
// could otherwise repopulate a slot its own successor already
// chain-broke, resurrecting an overwritten value. Empty slots refill
// only from stamped reads (in-flight fills are still poisoned here,
// since the fill's content may predate this write).
func (c *Cache) Install(addr uint64, val []byte, ntid, otid proto.TID) {
	s := c.shard(addr)
	s.mu.Lock()
	if fs := s.fills[addr]; fs != nil {
		fs.gen++
	}
	e, ok := s.entries[addr]
	switch {
	case ok && !otid.IsZero() && !e.tid.IsZero() && e.tid == otid:
		c.install(s, addr, val, ntid)
		s.mu.Unlock()
		c.stats.ChainInstalls.Add(1)
	case ok:
		c.remove(s, e)
		s.mu.Unlock()
		c.stats.ChainBreaks.Add(1)
	default:
		s.mu.Unlock()
		c.stats.ChainOrphans.Add(1)
	}
}

// Invalidate drops any cached entry for addr and poisons in-flight
// fills. Used when a write's outcome is unknown (errored mid-flight),
// when bulk stripe writes land without per-write stamps, and when the
// small-write tier flushes staged bytes into the base store.
func (c *Cache) Invalidate(addr uint64) {
	s := c.shard(addr)
	s.mu.Lock()
	if fs := s.fills[addr]; fs != nil {
		fs.gen++
	}
	if e, ok := s.entries[addr]; ok {
		c.remove(s, e)
		s.mu.Unlock()
		c.stats.Invalidations.Add(1)
		return
	}
	s.mu.Unlock()
}

// install inserts or replaces under the shard lock, then evicts from
// the LRU tail past capacity.
func (c *Cache) install(s *shard, addr uint64, val []byte, tid proto.TID) {
	if e, ok := s.entries[addr]; ok {
		c.bytes.Add(int64(len(val) - len(e.val)))
		s.bytes += int64(len(val) - len(e.val))
		e.val = append(e.val[:0], val...)
		e.tid = tid
		s.lru.MoveToFront(e.ele)
	} else {
		e := &entry{addr: addr, val: append([]byte(nil), val...), tid: tid}
		e.ele = s.lru.PushFront(e)
		s.entries[addr] = e
		s.bytes += int64(len(val))
		c.bytes.Add(int64(len(val)))
		c.count.Add(1)
	}
	for s.bytes > c.capShard && s.lru.Len() > 1 {
		tail := s.lru.Back()
		c.remove(s, tail.Value.(*entry))
		c.stats.Evictions.Add(1)
	}
}

func (c *Cache) remove(s *shard, e *entry) {
	s.lru.Remove(e.ele)
	delete(s.entries, e.addr)
	s.bytes -= int64(len(e.val))
	c.bytes.Add(-int64(len(e.val)))
	c.count.Add(-1)
}

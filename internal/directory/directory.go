// Package directory implements the node-remap mechanism of Section
// 3.5: clients address logical storage nodes; when a node fails, the
// directory points the logical identity at a fresh replacement node
// whose slots start in INIT mode. The protocol's recovery path then
// reconstructs the lost blocks onto it.
package directory

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/stripe"
)

// Replacer provisions a replacement storage node for a failed physical
// index. Implementations typically return a fresh storage.Node with
// Replacement set (INIT slots), wrapped in the deployment's transport.
// Returning nil means no replacement is available yet; the directory
// keeps the old (dead) mapping and clients keep failing until a
// replacement appears.
type Replacer func(phys int) proto.StorageNode

// Service is a thread-safe directory of physical node handles with
// failure-triggered remapping. It also fixes the stripe layout so that
// clients resolve (stripe, slot) pairs in one call.
type Service struct {
	layout stripe.Layout

	mu       sync.RWMutex
	nodes    []proto.StorageNode
	remaps   []int // remap count per physical index
	replacer Replacer

	// metrics is nil until Instrument is called; loaded atomically so
	// the resolve path stays lock-free about its own instrumentation.
	metrics atomic.Pointer[dirMetrics]
}

// dirMetrics holds the directory's registered metrics. Several
// directories instrumented into one registry aggregate, which is what
// a multi-group volume wants: one remap series for the deployment.
type dirMetrics struct {
	resolves *obs.Counter
	latency  *obs.Histogram
	remaps   *obs.Counter
	reports  *obs.Counter
}

// New builds a directory over the given physical nodes. The node count
// must match the layout's n.
func New(layout stripe.Layout, nodes []proto.StorageNode, replacer Replacer) (*Service, error) {
	if len(nodes) != layout.N() {
		return nil, fmt.Errorf("directory: %d nodes for layout with n=%d", len(nodes), layout.N())
	}
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("directory: node %d is nil", i)
		}
	}
	return &Service{
		layout:   layout,
		nodes:    append([]proto.StorageNode(nil), nodes...),
		remaps:   make([]int, len(nodes)),
		replacer: replacer,
	}, nil
}

// Instrument registers the directory's metrics — resolve count and
// latency, remap count, and failure reports received — in reg. A nil
// registry is a no-op.
func (s *Service) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.metrics.Store(&dirMetrics{
		resolves: reg.Counter("directory.resolves"),
		latency:  reg.Histogram("directory.resolve_latency"),
		remaps:   reg.Counter("directory.remaps"),
		reports:  reg.Counter("directory.failure_reports"),
	})
}

// Layout returns the stripe layout the directory serves.
func (s *Service) Layout() stripe.Layout { return s.layout }

// Node resolves the storage node currently serving the given stripe
// slot.
func (s *Service) Node(stripeID uint64, slot int) (proto.StorageNode, error) {
	m := s.metrics.Load()
	var sp obs.Span
	if m != nil {
		sp = obs.StartSpan(m.latency)
	}
	phys := s.layout.PhysicalNode(stripeID, slot)
	s.mu.RLock()
	n := s.nodes[phys]
	s.mu.RUnlock()
	if m != nil {
		m.resolves.Inc()
		sp.End()
	}
	return n, nil
}

// Physical resolves a node by physical index (used by monitoring).
func (s *Service) Physical(phys int) proto.StorageNode {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nodes[phys]
}

// ReportFailure tells the directory that `seen` — the handle the
// caller was using for this stripe slot — appears to have failed. If
// the directory still maps that handle and a replacer is configured,
// the logical identity is remapped to a fresh node. The comparison
// against `seen` makes concurrent reports idempotent: only the first
// one remaps.
func (s *Service) ReportFailure(stripeID uint64, slot int, seen proto.StorageNode) {
	m := s.metrics.Load()
	if m != nil {
		m.reports.Inc()
	}
	phys := s.layout.PhysicalNode(stripeID, slot)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nodes[phys] != seen || s.replacer == nil {
		return
	}
	if repl := s.replacer(phys); repl != nil {
		s.nodes[phys] = repl
		s.remaps[phys]++
		if m != nil {
			m.remaps.Inc()
		}
	}
}

// RemapCount returns how many times a physical index was remapped.
func (s *Service) RemapCount(phys int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.remaps[phys]
}

// ReplaceNode force-installs a node at a physical index (test and
// administrative use).
func (s *Service) ReplaceNode(phys int, n proto.StorageNode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[phys] = n
	s.remaps[phys]++
	if m := s.metrics.Load(); m != nil {
		m.remaps.Inc()
	}
}

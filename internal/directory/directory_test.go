package directory

import (
	"sync"
	"testing"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/storage"
	"ecstore/internal/stripe"
)

func newNodes(t *testing.T, n int) []proto.StorageNode {
	t.Helper()
	out := make([]proto.StorageNode, n)
	for i := range out {
		out[i] = storage.MustNew(storage.Options{ID: "d", BlockSize: 64})
	}
	return out
}

func TestNewValidation(t *testing.T) {
	layout := stripe.MustLayout(2, 4)
	if _, err := New(layout, newNodes(t, 3), nil); err == nil {
		t.Error("wrong node count accepted")
	}
	nodes := newNodes(t, 4)
	nodes[2] = nil
	if _, err := New(layout, nodes, nil); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := New(layout, newNodes(t, 4), nil); err != nil {
		t.Errorf("valid directory rejected: %v", err)
	}
}

func TestNodeResolvesThroughRotation(t *testing.T) {
	layout := stripe.MustLayout(2, 4)
	nodes := newNodes(t, 4)
	d, err := New(layout, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := uint64(0); s < 8; s++ {
		for slot := 0; slot < 4; slot++ {
			got, err := d.Node(s, slot)
			if err != nil {
				t.Fatal(err)
			}
			want := nodes[layout.PhysicalNode(s, slot)]
			if got != want {
				t.Fatalf("stripe %d slot %d resolved to the wrong node", s, slot)
			}
		}
	}
}

func TestReportFailureRemaps(t *testing.T) {
	layout := stripe.MustLayout(2, 4)
	nodes := newNodes(t, 4)
	replacements := 0
	repl := storage.MustNew(storage.Options{ID: "repl", BlockSize: 64, Replacement: true})
	d, err := New(layout, nodes, func(phys int) proto.StorageNode {
		replacements++
		return repl
	})
	if err != nil {
		t.Fatal(err)
	}
	old, _ := d.Node(0, 1)
	d.ReportFailure(0, 1, old)
	got, _ := d.Node(0, 1)
	if got != repl {
		t.Fatal("failure report did not remap")
	}
	if replacements != 1 {
		t.Fatalf("replacer called %d times", replacements)
	}
	phys := layout.PhysicalNode(0, 1)
	if d.RemapCount(phys) != 1 {
		t.Fatalf("remap count = %d", d.RemapCount(phys))
	}
}

func TestReportFailureIdempotent(t *testing.T) {
	// A stale report (the handle was already replaced) must not remap
	// again.
	layout := stripe.MustLayout(2, 4)
	nodes := newNodes(t, 4)
	calls := 0
	d, err := New(layout, nodes, func(phys int) proto.StorageNode {
		calls++
		return storage.MustNew(storage.Options{ID: "repl", BlockSize: 64, Replacement: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	old, _ := d.Node(0, 0)
	d.ReportFailure(0, 0, old)
	d.ReportFailure(0, 0, old) // stale: current mapping is the replacement
	if calls != 1 {
		t.Fatalf("replacer called %d times, want 1", calls)
	}
}

func TestReportFailureNoReplacer(t *testing.T) {
	layout := stripe.MustLayout(2, 4)
	nodes := newNodes(t, 4)
	d, err := New(layout, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	old, _ := d.Node(0, 0)
	d.ReportFailure(0, 0, old) // must be a no-op, not a panic
	got, _ := d.Node(0, 0)
	if got != old {
		t.Fatal("mapping changed with no replacer")
	}
}

func TestReplacerReturningNilKeepsMapping(t *testing.T) {
	layout := stripe.MustLayout(2, 4)
	nodes := newNodes(t, 4)
	d, err := New(layout, nodes, func(phys int) proto.StorageNode { return nil })
	if err != nil {
		t.Fatal(err)
	}
	old, _ := d.Node(0, 0)
	d.ReportFailure(0, 0, old)
	got, _ := d.Node(0, 0)
	if got != old {
		t.Fatal("nil replacement changed the mapping")
	}
	if d.RemapCount(layout.PhysicalNode(0, 0)) != 0 {
		t.Fatal("nil replacement counted as a remap")
	}
}

func TestReplaceNodeForce(t *testing.T) {
	layout := stripe.MustLayout(2, 4)
	d, err := New(layout, newNodes(t, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	repl := storage.MustNew(storage.Options{ID: "forced", BlockSize: 64})
	d.ReplaceNode(2, repl)
	if d.Physical(2) != repl {
		t.Fatal("ReplaceNode did not install the node")
	}
	if d.RemapCount(2) != 1 {
		t.Fatal("forced replacement not counted")
	}
}

func TestLayoutAccessor(t *testing.T) {
	layout := stripe.MustLayout(3, 5)
	d, err := New(layout, newNodes(t, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Layout().K() != 3 || d.Layout().N() != 5 {
		t.Fatal("Layout accessor mismatch")
	}
}

func TestConcurrentReportsRaceSafely(t *testing.T) {
	layout := stripe.MustLayout(2, 4)
	nodes := newNodes(t, 4)
	var calls int
	var mu sync.Mutex
	d, err := New(layout, nodes, func(phys int) proto.StorageNode {
		mu.Lock()
		calls++
		mu.Unlock()
		return storage.MustNew(storage.Options{ID: "r", BlockSize: 64, Replacement: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	old, _ := d.Node(0, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.ReportFailure(0, 0, old)
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("replacer called %d times under concurrent reports, want 1", calls)
	}
}

func TestInstrumentMetrics(t *testing.T) {
	layout := stripe.MustLayout(2, 4)
	nodes := newNodes(t, 4)
	d, err := New(layout, nodes, func(phys int) proto.StorageNode {
		return storage.MustNew(storage.Options{ID: "repl", BlockSize: 64, Replacement: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	d.Instrument(reg)

	for s := uint64(0); s < 5; s++ {
		if _, err := d.Node(s, 1); err != nil {
			t.Fatal(err)
		}
	}
	seen, _ := d.Node(7, 2)
	d.ReportFailure(7, 2, seen)
	d.ReportFailure(7, 2, seen) // stale handle: counted as a report, not a remap
	d.ReplaceNode(0, storage.MustNew(storage.Options{ID: "force", BlockSize: 64}))

	snap := reg.Snapshot()
	if got := snap["directory.resolves"].(uint64); got != 6 {
		t.Fatalf("directory.resolves = %d, want 6", got)
	}
	if got := snap["directory.failure_reports"].(uint64); got != 2 {
		t.Fatalf("directory.failure_reports = %d, want 2", got)
	}
	if got := snap["directory.remaps"].(uint64); got != 2 {
		t.Fatalf("directory.remaps = %d, want 2 (one report-driven, one forced)", got)
	}
	hist := snap["directory.resolve_latency"].(*obs.HistogramSnapshot)
	if hist.Count != 6 {
		t.Fatalf("directory.resolve_latency count = %d, want 6", hist.Count)
	}
}

func TestInstrumentNilRegistryNoop(t *testing.T) {
	layout := stripe.MustLayout(2, 4)
	d, err := New(layout, newNodes(t, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Instrument(nil)
	if _, err := d.Node(0, 0); err != nil {
		t.Fatal(err)
	}
}

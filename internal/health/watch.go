package health

import (
	"context"
	"time"

	"ecstore/internal/proto"
)

// Node wraps a proto.StorageNode so every call feeds its site's health
// record and is gated by the site's circuit breaker. It forwards the
// optional capabilities (MultiBatcher, PartialSummer) through the
// proto helpers, and exposes the site's adaptive hedge delay and score
// as capabilities core can discover by type assertion.
//
// Wrap the outermost transport handle (outside fault-injection or
// shaping wrappers) so the record sees the latency the client actually
// experiences.
type Node struct {
	inner proto.StorageNode
	site  *Site
}

var _ proto.StorageNode = (*Node)(nil)
var _ proto.MultiBatcher = (*Node)(nil)
var _ proto.PartialSummer = (*Node)(nil)

// Watch wraps inner so its calls feed the record of site id.
func (t *Tracker) Watch(id string, inner proto.StorageNode) *Node {
	return &Node{inner: inner, site: t.Site(id)}
}

// Inner returns the wrapped node.
func (n *Node) Inner() proto.StorageNode { return n.inner }

// Site returns the health record this wrapper feeds.
func (n *Node) Site() *Site { return n.site }

// HedgeDelay implements the adaptive-hedge capability: how long a
// read against this site should wait before hedging.
func (n *Node) HedgeDelay() time.Duration { return n.site.HedgeDelay() }

// HealthScore implements the slot-ranking capability: lower is
// healthier.
func (n *Node) HealthScore() float64 { return n.site.Score() }

func observe[Rep any](n *Node, call func() (Rep, error)) (Rep, error) {
	if err := n.site.Allow(); err != nil {
		var zero Rep
		return zero, err
	}
	start := n.site.t.opts.now()
	rep, err := call()
	n.site.Observe(n.site.t.opts.now().Sub(start), err)
	return rep, err
}

func (n *Node) Read(ctx context.Context, req *proto.ReadReq) (*proto.ReadReply, error) {
	return observe(n, func() (*proto.ReadReply, error) { return n.inner.Read(ctx, req) })
}

func (n *Node) Swap(ctx context.Context, req *proto.SwapReq) (*proto.SwapReply, error) {
	return observe(n, func() (*proto.SwapReply, error) { return n.inner.Swap(ctx, req) })
}

func (n *Node) Add(ctx context.Context, req *proto.AddReq) (*proto.AddReply, error) {
	return observe(n, func() (*proto.AddReply, error) { return n.inner.Add(ctx, req) })
}

func (n *Node) BatchAdd(ctx context.Context, req *proto.BatchAddReq) (*proto.BatchAddReply, error) {
	return observe(n, func() (*proto.BatchAddReply, error) { return n.inner.BatchAdd(ctx, req) })
}

// BatchAddMulti forwards the coalescing capability; an inner node
// without it falls back to the per-stripe loop inside the helper.
func (n *Node) BatchAddMulti(ctx context.Context, req *proto.BatchAddMultiReq) (*proto.BatchAddMultiReply, error) {
	return observe(n, func() (*proto.BatchAddMultiReply, error) { return proto.BatchAddMulti(ctx, n.inner, req) })
}

func (n *Node) CheckTID(ctx context.Context, req *proto.CheckTIDReq) (*proto.CheckTIDReply, error) {
	return observe(n, func() (*proto.CheckTIDReply, error) { return n.inner.CheckTID(ctx, req) })
}

func (n *Node) TryLock(ctx context.Context, req *proto.TryLockReq) (*proto.TryLockReply, error) {
	return observe(n, func() (*proto.TryLockReply, error) { return n.inner.TryLock(ctx, req) })
}

func (n *Node) SetLock(ctx context.Context, req *proto.SetLockReq) (*proto.SetLockReply, error) {
	return observe(n, func() (*proto.SetLockReply, error) { return n.inner.SetLock(ctx, req) })
}

func (n *Node) GetState(ctx context.Context, req *proto.GetStateReq) (*proto.GetStateReply, error) {
	return observe(n, func() (*proto.GetStateReply, error) { return n.inner.GetState(ctx, req) })
}

func (n *Node) GetRecent(ctx context.Context, req *proto.GetRecentReq) (*proto.GetRecentReply, error) {
	return observe(n, func() (*proto.GetRecentReply, error) { return n.inner.GetRecent(ctx, req) })
}

func (n *Node) Reconstruct(ctx context.Context, req *proto.ReconstructReq) (*proto.ReconstructReply, error) {
	return observe(n, func() (*proto.ReconstructReply, error) { return n.inner.Reconstruct(ctx, req) })
}

func (n *Node) Finalize(ctx context.Context, req *proto.FinalizeReq) (*proto.FinalizeReply, error) {
	return observe(n, func() (*proto.FinalizeReply, error) { return n.inner.Finalize(ctx, req) })
}

func (n *Node) GCOld(ctx context.Context, req *proto.GCOldReq) (*proto.GCReply, error) {
	return observe(n, func() (*proto.GCReply, error) { return n.inner.GCOld(ctx, req) })
}

func (n *Node) GCRecent(ctx context.Context, req *proto.GCRecentReq) (*proto.GCReply, error) {
	return observe(n, func() (*proto.GCReply, error) { return n.inner.GCRecent(ctx, req) })
}

func (n *Node) Probe(ctx context.Context, req *proto.ProbeReq) (*proto.ProbeReply, error) {
	return observe(n, func() (*proto.ProbeReply, error) { return n.inner.Probe(ctx, req) })
}

// PartialSum forwards the frugal-repair capability; an inner node
// without it fails with proto.ErrNoPartialSum — a capability miss,
// not a site failure, so Observe treats it as health-neutral.
func (n *Node) PartialSum(ctx context.Context, req *proto.PartialSumReq) (*proto.PartialSumReply, error) {
	return observe(n, func() (*proto.PartialSumReply, error) { return proto.PartialSum(ctx, n.inner, req) })
}

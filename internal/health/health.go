// Package health scores storage sites by observed behavior so the
// client can route around gray (slow-but-alive) and failing sites
// instead of discovering them one timeout at a time.
//
// A Tracker keeps one Site record per site id. Every call made through
// a Watch wrapper feeds the record: successful call latencies drive an
// EWMA mean and deviation (the basis of the adaptive hedge delay —
// roughly a p95 estimate), and transport errors drive an error-rate
// EWMA plus a per-site circuit breaker:
//
//	closed ──(OpenAfter consecutive errors, or one ErrDraining)──► open
//	open   ──(Cooloff elapsed; next call admitted as probe)──► half-open
//	half-open ──(probe succeeds)──► closed
//	half-open ──(probe fails)──► open
//
// While open, calls fail fast with a proto.ErrNodeDown-wrapped error —
// the flat dial cooldown generalized to any transport. A site whose
// latency EWMA stays above GrayLatency for GrayAfter is reported once
// through OnQuarantine, so persistent grayness reaches the repair
// scheduler the same way a crash does.
package health

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
)

// ErrBreakerOpen marks calls rejected without touching the site
// because its circuit breaker is open. It wraps proto.ErrNodeDown so
// the retry/degraded machinery in core treats it as a transport
// failure.
var ErrBreakerOpen = errors.New("health: circuit breaker open")

// BreakerState is the per-site circuit breaker position.
type BreakerState uint8

const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Options tunes a Tracker. The zero value picks usable defaults.
type Options struct {
	// Alpha is the EWMA weight of the newest sample, in (0, 1].
	// Default 0.2: roughly the last ~20 calls dominate the estimate.
	Alpha float64
	// HedgeFloor and HedgeCeil clamp the adaptive hedge delay. The
	// floor keeps a very fast site from triggering hedges on scheduler
	// noise; the ceiling bounds how long a chronically slow site can
	// postpone its own hedges. Defaults 200µs and 4ms.
	HedgeFloor, HedgeCeil time.Duration
	// OpenAfter is the consecutive-transport-error count that opens
	// the breaker. Default 5. An ErrDraining opens it immediately.
	OpenAfter int
	// Cooloff is how long an open breaker rejects before admitting a
	// single half-open probe call. Default 250ms.
	Cooloff time.Duration
	// GrayLatency is the latency EWMA above which a site counts as
	// gray. Default 20ms.
	GrayLatency time.Duration
	// GrayAfter is how long a site must stay gray before it is
	// quarantined (reported once via OnQuarantine). 0 disables
	// quarantine.
	GrayAfter time.Duration
	// OnQuarantine, if set, is called exactly once per site when its
	// grayness persists past GrayAfter. It runs without Tracker locks
	// held; wiring it to a site-retire + repair report is the caller's
	// business.
	OnQuarantine func(site string)
	// Obs, if non-nil, exports tracker-wide gauges and counters
	// (health.sites, health.open_breakers, health.gray_sites,
	// health.breaker_opens, health.fast_fails, health.quarantines).
	Obs *obs.Registry

	// now overrides the clock in tests.
	now func() time.Time
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Alpha <= 0 || out.Alpha > 1 {
		out.Alpha = 0.2
	}
	if out.HedgeFloor <= 0 {
		out.HedgeFloor = 200 * time.Microsecond
	}
	if out.HedgeCeil <= 0 {
		out.HedgeCeil = 4 * time.Millisecond
	}
	if out.HedgeCeil < out.HedgeFloor {
		out.HedgeCeil = out.HedgeFloor
	}
	if out.OpenAfter <= 0 {
		out.OpenAfter = 5
	}
	if out.Cooloff <= 0 {
		out.Cooloff = 250 * time.Millisecond
	}
	if out.GrayLatency <= 0 {
		out.GrayLatency = 20 * time.Millisecond
	}
	if out.now == nil {
		out.now = time.Now
	}
	return out
}

// Tracker keeps health state for a set of sites.
type Tracker struct {
	opts Options

	mu    sync.Mutex
	sites map[string]*Site

	breakerOpens *obs.Counter
	fastFails    *obs.Counter
	quarantines  *obs.Counter
}

// NewTracker builds a tracker. A nil options pointer uses defaults.
func NewTracker(opts Options) *Tracker {
	t := &Tracker{opts: opts.withDefaults(), sites: make(map[string]*Site)}
	reg := t.opts.Obs
	t.breakerOpens = reg.Counter("health.breaker_opens")
	t.fastFails = reg.Counter("health.fast_fails")
	t.quarantines = reg.Counter("health.quarantines")
	if reg != nil {
		reg.Func("health.sites", func() int64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return int64(len(t.sites))
		})
		reg.Func("health.open_breakers", func() int64 {
			return t.countSites(func(st SiteStatus) bool { return st.State == Open })
		})
		reg.Func("health.gray_sites", func() int64 {
			return t.countSites(func(st SiteStatus) bool { return st.Gray })
		})
	}
	return t
}

func (t *Tracker) countSites(pred func(SiteStatus) bool) int64 {
	t.mu.Lock()
	sites := make([]*Site, 0, len(t.sites))
	for _, s := range t.sites {
		sites = append(sites, s)
	}
	t.mu.Unlock()
	var n int64
	for _, s := range sites {
		if pred(s.Status()) {
			n++
		}
	}
	return n
}

// Site returns the record for a site id, creating it on first use.
func (t *Tracker) Site(id string) *Site {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sites[id]
	if !ok {
		s = &Site{t: t, id: id}
		t.sites[id] = s
	}
	return s
}

// Site is the per-site health record. All methods are safe for
// concurrent use.
type Site struct {
	t  *Tracker
	id string

	mu       sync.Mutex
	mean     float64 // EWMA latency, nanoseconds
	dev      float64 // EWMA absolute deviation, nanoseconds
	samples  uint64
	errRate  float64 // EWMA of the 0/1 error indicator
	state    BreakerState
	consec   int // consecutive transport errors
	openedAt time.Time
	probing  bool // a half-open probe call is in flight

	graySince   time.Time
	quarantined bool
}

// ID returns the site id.
func (s *Site) ID() string { return s.id }

// SiteStatus is a point-in-time copy of a site's health record.
type SiteStatus struct {
	Mean, Dev   time.Duration
	Samples     uint64
	ErrRate     float64
	State       BreakerState
	Gray        bool
	Quarantined bool
}

// Status snapshots the record.
func (s *Site) Status() SiteStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SiteStatus{
		Mean:        time.Duration(s.mean),
		Dev:         time.Duration(s.dev),
		Samples:     s.samples,
		ErrRate:     s.errRate,
		State:       s.state,
		Gray:        !s.graySince.IsZero(),
		Quarantined: s.quarantined,
	}
}

// Allow gates a call on the circuit breaker: nil means proceed (the
// caller must Observe the outcome), a non-nil error means fail fast
// without touching the site. In half-open, exactly one in-flight call
// is admitted as the probe.
func (s *Site) Allow() error {
	s.mu.Lock()
	switch s.state {
	case Closed:
		s.mu.Unlock()
		return nil
	case Open:
		if s.t.opts.now().Sub(s.openedAt) >= s.t.opts.Cooloff {
			s.state = HalfOpen
			s.probing = true
			s.mu.Unlock()
			return nil
		}
	case HalfOpen:
		if !s.probing {
			s.probing = true
			s.mu.Unlock()
			return nil
		}
	}
	s.mu.Unlock()
	s.t.fastFails.Inc()
	return fmt.Errorf("%w: %w: site %s", ErrBreakerOpen, proto.ErrNodeDown, s.id)
}

// neutralOutcome reports errors that say nothing about the site's
// health: the caller abandoned the call (hedge cancellation, its own
// deadline), the server shed it because the caller's budget was
// already spent, or the node simply lacks an optional capability.
func neutralOutcome(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, proto.ErrDeadlineExceeded) ||
		errors.Is(err, proto.ErrNoPartialSum)
}

// Observe records one call's outcome. d is the call's wall time; err
// nil means success. Neutral outcomes (cancellations) are ignored.
func (s *Site) Observe(d time.Duration, err error) {
	if err != nil && neutralOutcome(err) {
		// Health-neutral, but if this call held the half-open probe
		// slot it must give it back or the breaker wedges.
		s.mu.Lock()
		if s.state == HalfOpen {
			s.probing = false
		}
		s.mu.Unlock()
		return
	}
	now := s.t.opts.now()
	var quarantine bool
	s.mu.Lock()
	alpha := s.t.opts.Alpha
	opened := false
	if err != nil {
		s.errRate += alpha * (1 - s.errRate)
		s.consec++
		switch {
		case errors.Is(err, proto.ErrDraining):
			// A draining node told us, politely and in advance, to go
			// away: open at once rather than burning OpenAfter calls.
			opened = s.state != Open
			s.state = Open
			s.openedAt = now
			s.probing = false
		case s.state == HalfOpen:
			opened = true // probe failed: reopen
			s.state = Open
			s.openedAt = now
			s.probing = false
		case s.state == Closed && s.consec >= s.t.opts.OpenAfter:
			opened = true
			s.state = Open
			s.openedAt = now
		}
	} else {
		s.errRate -= alpha * s.errRate
		s.consec = 0
		if s.state != Closed {
			s.state = Closed
			s.probing = false
		}
		// Latency feeds the estimator only on success; error paths
		// often return instantly (or after an unrelated timeout) and
		// would poison the hedge delay.
		sample := float64(d)
		if s.samples == 0 {
			s.mean = sample
		} else {
			s.mean += alpha * (sample - s.mean)
			diff := sample - s.mean
			if diff < 0 {
				diff = -diff
			}
			s.dev += alpha * (diff - s.dev)
		}
		s.samples++
		quarantine = s.updateGrayLocked(now)
	}
	s.mu.Unlock()
	if opened {
		s.t.breakerOpens.Inc()
	}
	if quarantine {
		s.t.quarantines.Inc()
		if fn := s.t.opts.OnQuarantine; fn != nil {
			fn(s.id)
		}
	}
}

// updateGrayLocked maintains the gray window and returns true exactly
// once, when grayness has persisted past GrayAfter.
func (s *Site) updateGrayLocked(now time.Time) bool {
	if time.Duration(s.mean) <= s.t.opts.GrayLatency {
		s.graySince = time.Time{}
		return false
	}
	if s.graySince.IsZero() {
		s.graySince = now
	}
	if s.t.opts.GrayAfter > 0 && !s.quarantined && now.Sub(s.graySince) >= s.t.opts.GrayAfter {
		s.quarantined = true
		return true
	}
	return false
}

// HedgeDelay returns the adaptive per-site hedge delay: a p95-ish
// latency estimate (EWMA mean + 2.5 mean absolute deviations), clamped
// to [HedgeFloor, HedgeCeil]. A hedged read that waits this long fires
// only on tail outliers of a healthy site, and within the ceiling on a
// gray one.
func (s *Site) HedgeDelay() time.Duration {
	s.mu.Lock()
	est := time.Duration(s.mean + 2.5*s.dev)
	samples := s.samples
	s.mu.Unlock()
	if samples < 8 {
		// Too little signal: be conservative, hedge late.
		return s.t.opts.HedgeCeil
	}
	if est < s.t.opts.HedgeFloor {
		return s.t.opts.HedgeFloor
	}
	if est > s.t.opts.HedgeCeil {
		return s.t.opts.HedgeCeil
	}
	return est
}

// Score ranks sites for slot selection: lower is healthier. It is the
// p95-ish latency estimate inflated by the error rate, with an open
// breaker pushed past any live site.
func (s *Site) Score() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	score := (s.mean + 2.5*s.dev) * (1 + 10*s.errRate)
	if s.state == Open {
		score += 1e15 // an hour, in nanoseconds: after every live site
	}
	return score
}

package health

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/storage"
)

// fakeClock is a manually-advanced clock for deterministic breaker and
// quarantine timing.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestTracker(clk *fakeClock, opts Options) *Tracker {
	opts.now = clk.Now
	return NewTracker(opts)
}

func TestHedgeDelayTracksLatency(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracker(clk, Options{HedgeFloor: 100 * time.Microsecond, HedgeCeil: 5 * time.Millisecond})
	s := tr.Site("a")
	// Before enough samples the delay is the conservative ceiling.
	if got := s.HedgeDelay(); got != 5*time.Millisecond {
		t.Fatalf("cold hedge delay = %v, want ceiling", got)
	}
	for i := 0; i < 100; i++ {
		s.Observe(300*time.Microsecond, nil)
	}
	d := s.HedgeDelay()
	if d < 100*time.Microsecond || d > 1*time.Millisecond {
		t.Fatalf("steady 300µs site: hedge delay = %v, want a few hundred µs", d)
	}
	// A chronically slow site is clamped at the ceiling, not unbounded.
	for i := 0; i < 100; i++ {
		s.Observe(80*time.Millisecond, nil)
	}
	if got := s.HedgeDelay(); got != 5*time.Millisecond {
		t.Fatalf("gray site hedge delay = %v, want ceiling clamp", got)
	}
	// And a very fast one sits at the floor.
	s2 := tr.Site("b")
	for i := 0; i < 100; i++ {
		s2.Observe(2*time.Microsecond, nil)
	}
	if got := s2.HedgeDelay(); got != 100*time.Microsecond {
		t.Fatalf("fast site hedge delay = %v, want floor clamp", got)
	}
}

func TestBreakerOpensProbesCloses(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	tr := newTestTracker(clk, Options{OpenAfter: 3, Cooloff: 100 * time.Millisecond, Obs: reg})
	s := tr.Site("a")
	boom := fmt.Errorf("%w: injected", proto.ErrNodeDown)
	for i := 0; i < 3; i++ {
		if err := s.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		s.Observe(time.Millisecond, boom)
	}
	if st := s.Status().State; st != Open {
		t.Fatalf("state after %d errors = %v, want open", 3, st)
	}
	// Open: fail fast, wrapping both sentinels.
	err := s.Allow()
	if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, proto.ErrNodeDown) {
		t.Fatalf("open breaker error = %v, want ErrBreakerOpen wrapping ErrNodeDown", err)
	}
	// After the cooloff exactly one probe is admitted.
	clk.Advance(150 * time.Millisecond)
	if err := s.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := s.Allow(); err == nil {
		t.Fatal("second concurrent call admitted during half-open probe")
	}
	// Failed probe reopens...
	s.Observe(time.Millisecond, boom)
	if st := s.Status().State; st != Open {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	// ...and a successful one closes.
	clk.Advance(150 * time.Millisecond)
	if err := s.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	s.Observe(time.Millisecond, nil)
	if st := s.Status().State; st != Closed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if err := s.Allow(); err != nil {
		t.Fatalf("closed breaker rejected call: %v", err)
	}
	if got := reg.Snapshot()["health.breaker_opens"]; got.(uint64) != 2 {
		t.Fatalf("breaker_opens = %v, want 2", got)
	}
}

func TestDrainingOpensImmediately(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracker(clk, Options{OpenAfter: 50})
	s := tr.Site("a")
	s.Observe(time.Millisecond, fmt.Errorf("refused: %w", proto.ErrDraining))
	if st := s.Status().State; st != Open {
		t.Fatalf("state after ErrDraining = %v, want open without waiting for OpenAfter", st)
	}
}

func TestNeutralOutcomesDoNotTrip(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracker(clk, Options{OpenAfter: 2})
	s := tr.Site("a")
	for i := 0; i < 20; i++ {
		s.Observe(time.Millisecond, context.Canceled)
		s.Observe(time.Millisecond, context.DeadlineExceeded)
		s.Observe(time.Millisecond, proto.ErrDeadlineExceeded)
	}
	st := s.Status()
	if st.State != Closed || st.ErrRate != 0 || st.Samples != 0 {
		t.Fatalf("neutral outcomes mutated the record: %+v", st)
	}
	// A cancelled half-open probe must release the probe slot.
	boom := fmt.Errorf("%w: x", proto.ErrNodeDown)
	s.Observe(0, boom)
	s.Observe(0, boom)
	clk.Advance(time.Hour)
	if err := s.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	s.Observe(0, context.Canceled)
	if err := s.Allow(); err != nil {
		t.Fatalf("probe slot not released after cancelled probe: %v", err)
	}
}

func TestQuarantineFiresOnceOnPersistentGray(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	var fired []string
	tr := newTestTracker(clk, Options{
		GrayLatency: 5 * time.Millisecond,
		GrayAfter:   time.Second,
		OnQuarantine: func(site string) {
			mu.Lock()
			fired = append(fired, site)
			mu.Unlock()
		},
	})
	s := tr.Site("slow")
	for i := 0; i < 100; i++ {
		s.Observe(40*time.Millisecond, nil)
		clk.Advance(50 * time.Millisecond)
	}
	mu.Lock()
	got := len(fired)
	mu.Unlock()
	if got != 1 || fired[0] != "slow" {
		t.Fatalf("quarantine fired %d times (%v), want once for 'slow'", got, fired)
	}
	if !s.Status().Quarantined {
		t.Fatal("site not marked quarantined")
	}
	// A healthy site never quarantines.
	h := tr.Site("fast")
	for i := 0; i < 100; i++ {
		h.Observe(100*time.Microsecond, nil)
		clk.Advance(50 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 {
		t.Fatalf("healthy site quarantined: %v", fired)
	}
}

func TestGrayRecoveryResetsWindow(t *testing.T) {
	clk := newFakeClock()
	var fired int
	tr := newTestTracker(clk, Options{
		GrayLatency:  5 * time.Millisecond,
		GrayAfter:    time.Second,
		OnQuarantine: func(string) { fired++ },
	})
	s := tr.Site("flappy")
	// Gray for less than GrayAfter, then healthy again: no quarantine.
	// The healthy phase advances the clock gently at first, because the
	// EWMA needs ~10 samples to decay back under the gray threshold and
	// the gray window keeps accumulating until it does.
	for i := 0; i < 5; i++ {
		s.Observe(40*time.Millisecond, nil)
		clk.Advance(100 * time.Millisecond)
	}
	for i := 0; i < 200; i++ {
		s.Observe(50*time.Microsecond, nil)
		clk.Advance(time.Millisecond)
	}
	if fired != 0 {
		t.Fatalf("transiently gray site quarantined %d times", fired)
	}
	if s.Status().Gray {
		t.Fatal("recovered site still marked gray")
	}
}

func TestWatchFeedsRecordAndFailsFast(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	tr := newTestTracker(clk, Options{OpenAfter: 2, Cooloff: time.Minute, Obs: reg})
	inner := storage.MustNew(storage.Options{ID: "s0", BlockSize: 16})
	n := tr.Watch("s0", inner)
	ctx := context.Background()
	if _, err := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	if got := n.Site().Status().Samples; got != 1 {
		t.Fatalf("samples = %d, want 1", got)
	}
	inner.Crash()
	for i := 0; i < 2; i++ {
		if _, err := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0}); err == nil {
			t.Fatal("crashed node read succeeded")
		}
	}
	// Breaker now open: calls fail fast without reaching the node.
	_, err := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want fast-fail ErrBreakerOpen", err)
	}
	if got := reg.Snapshot()["health.fast_fails"]; got.(uint64) == 0 {
		t.Fatal("fast fails not counted")
	}
	if got := reg.Snapshot()["health.open_breakers"]; got.(int64) != 1 {
		t.Fatalf("open_breakers gauge = %v, want 1", got)
	}
}

func TestScoreRanksGrayAndDeadSitesLast(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracker(clk, Options{OpenAfter: 1})
	fast, slow, dead := tr.Site("fast"), tr.Site("slow"), tr.Site("dead")
	for i := 0; i < 50; i++ {
		fast.Observe(100*time.Microsecond, nil)
		slow.Observe(30*time.Millisecond, nil)
	}
	dead.Observe(0, fmt.Errorf("%w: x", proto.ErrNodeDown))
	if !(fast.Score() < slow.Score() && slow.Score() < dead.Score()) {
		t.Fatalf("score order wrong: fast=%g slow=%g dead=%g", fast.Score(), slow.Score(), dead.Score())
	}
}

func BenchmarkObserve(b *testing.B) {
	tr := NewTracker(Options{})
	s := tr.Site("a")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(300*time.Microsecond, nil)
	}
}

func BenchmarkAllowClosed(b *testing.B) {
	tr := NewTracker(Options{})
	s := tr.Site("a")
	s.Observe(time.Millisecond, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Allow(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHedgeDelay(b *testing.B) {
	tr := NewTracker(Options{})
	s := tr.Site("a")
	for i := 0; i < 100; i++ {
		s.Observe(300*time.Microsecond, nil)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.HedgeDelay()
	}
}

package tier

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ecstore/internal/bulk"
	"ecstore/internal/core"
	"ecstore/internal/proto"
)

// fakeBase is an in-memory Stamped store with a controllable read
// provenance: primary=false models hedged/degraded/reconstructed reads
// (correct content, no usable stamp).
type fakeBase struct {
	mu     sync.Mutex
	bs     int
	cap    uint64
	blocks map[uint64][]byte
	tids   map[uint64]proto.TID
	seq    uint64

	primary    atomic.Bool
	failWrites atomic.Bool
	reads      atomic.Uint64
	writes     atomic.Uint64

	// When armed, the first stamped read of gateAddr parks AFTER
	// computing its (possibly about-to-be-stale) result: tests use it
	// to interleave a flush between a reader's base fetch and its
	// staged-byte patch.
	gateAddr   uint64
	gateArmed  atomic.Bool
	gateParked chan struct{}
	gateGo     chan struct{}
}

func newFake(bs int, capBlocks uint64) *fakeBase {
	f := &fakeBase{
		bs: bs, cap: capBlocks,
		blocks: make(map[uint64][]byte),
		tids:   make(map[uint64]proto.TID),
	}
	f.primary.Store(true)
	return f
}

func (f *fakeBase) BlockSize() int      { return f.bs }
func (f *fakeBase) StripeK() int        { return 2 }
func (f *fakeBase) GroupBlocks() uint64 { return 0 }
func (f *fakeBase) Capacity() uint64    { return f.cap }

func (f *fakeBase) get(addr uint64) []byte {
	out := make([]byte, f.bs)
	copy(out, f.blocks[addr])
	return out
}

func (f *fakeBase) ReadBlock(ctx context.Context, addr uint64) ([]byte, error) {
	blk, _, err := f.ReadBlockStamped(ctx, addr)
	return blk, err
}

func (f *fakeBase) ReadBlockStamped(_ context.Context, addr uint64) ([]byte, core.ReadStamp, error) {
	f.reads.Add(1)
	f.mu.Lock()
	blk := f.get(addr)
	st := core.ReadStamp{TID: f.tids[addr], Primary: f.primary.Load()}
	f.mu.Unlock()
	if addr == f.gateAddr && f.gateArmed.CompareAndSwap(true, false) {
		f.gateParked <- struct{}{}
		<-f.gateGo
	}
	return blk, st, nil
}

func (f *fakeBase) WriteBlock(ctx context.Context, addr uint64, data []byte) error {
	_, _, err := f.WriteBlockStamped(ctx, addr, data)
	return err
}

func (f *fakeBase) WriteBlockStamped(_ context.Context, addr uint64, data []byte) (ntid, otid proto.TID, err error) {
	f.writes.Add(1)
	if f.failWrites.Load() {
		return proto.TID{}, proto.TID{}, errors.New("fakeBase: injected write failure")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	otid = f.tids[addr]
	f.seq++
	ntid = proto.TID{Seq: f.seq, Block: uint32(addr), Client: 1}
	f.tids[addr] = ntid
	f.blocks[addr] = append([]byte(nil), data...)
	return ntid, otid, nil
}

func (f *fakeBase) WriteStripes(ctx context.Context, writes []bulk.StripeWrite) ([]error, bulk.WriteStats) {
	errs := make([]error, len(writes))
	for i, w := range writes {
		for j, v := range w.Values {
			if err := f.WriteBlock(ctx, w.Addr+uint64(j), v); err != nil {
				errs[i] = err
				break
			}
		}
	}
	return errs, bulk.WriteStats{}
}

var _ Stamped = (*fakeBase)(nil)

const bs = 64

func newCachedLayer(t *testing.T, f *fakeBase) *Layer {
	t.Helper()
	l, err := NewLayer(Options{Base: f, CacheBytes: 1 << 20, NoSalvage: true})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func pat(b byte) []byte { return bytes.Repeat([]byte{b}, bs) }

func TestPrimaryReadFillsAndHits(t *testing.T) {
	f := newFake(bs, 0)
	l := newCachedLayer(t, f)
	ctx := context.Background()
	must(t, f.WriteBlock(ctx, 5, pat('a')))
	f.writes.Store(0)

	for i := 0; i < 3; i++ {
		got, err := l.ReadBlock(ctx, 5)
		if err != nil || !bytes.Equal(got, pat('a')) {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if f.reads.Load() != 1 {
		t.Fatalf("base reads = %d, want 1 (fill) for 3 ReadBlocks", f.reads.Load())
	}
	st := l.CacheStats()
	if st.Fills.Load() != 1 || st.Hits.Load() != 2 {
		t.Fatalf("fills=%d hits=%d", st.Fills.Load(), st.Hits.Load())
	}
}

func TestDegradedReadNeverFills(t *testing.T) {
	f := newFake(bs, 0)
	l := newCachedLayer(t, f)
	ctx := context.Background()
	must(t, f.WriteBlock(ctx, 5, pat('d')))
	f.primary.Store(false) // every read is now degraded/reconstructed

	for i := 0; i < 3; i++ {
		got, err := l.ReadBlock(ctx, 5)
		if err != nil || !bytes.Equal(got, pat('d')) {
			t.Fatalf("degraded read %d: %v", i, err)
		}
	}
	// Content was correct every time, but none of it was cacheable.
	if f.reads.Load() != 3 {
		t.Fatalf("base reads = %d, want 3 (no caching)", f.reads.Load())
	}
	if st := l.CacheStats(); st.Fills.Load() != 0 || st.Hits.Load() != 0 {
		t.Fatalf("degraded reads filled the cache: fills=%d hits=%d", st.Fills.Load(), st.Hits.Load())
	}
	// Back to primary: the next read fills, the one after hits.
	f.primary.Store(true)
	_, _ = l.ReadBlock(ctx, 5)
	_, _ = l.ReadBlock(ctx, 5)
	if st := l.CacheStats(); st.Fills.Load() != 1 || st.Hits.Load() != 1 {
		t.Fatalf("recovery to primary: fills=%d hits=%d", st.Fills.Load(), st.Hits.Load())
	}
}

func TestWriteChainsOntoCachedEntry(t *testing.T) {
	f := newFake(bs, 0)
	l := newCachedLayer(t, f)
	ctx := context.Background()
	must(t, f.WriteBlock(ctx, 9, pat('a')))
	if _, err := l.ReadBlock(ctx, 9); err != nil { // fill
		t.Fatal(err)
	}
	must(t, l.WriteBlock(ctx, 9, pat('b')))
	if st := l.CacheStats(); st.ChainInstalls.Load() != 1 {
		t.Fatalf("chain installs = %d", st.ChainInstalls.Load())
	}
	f.reads.Store(0)
	got, err := l.ReadBlock(ctx, 9)
	if err != nil || !bytes.Equal(got, pat('b')) {
		t.Fatalf("read after chained write: %v", err)
	}
	if f.reads.Load() != 0 {
		t.Fatal("chained write's value not served from cache")
	}
}

func TestOrphanWriteDoesNotPopulateCache(t *testing.T) {
	f := newFake(bs, 0)
	l := newCachedLayer(t, f)
	ctx := context.Background()
	// No cached predecessor: the write must not install its value.
	must(t, l.WriteBlock(ctx, 3, pat('w')))
	if st := l.CacheStats(); st.ChainOrphans.Load() != 1 {
		t.Fatalf("chain orphans = %d", st.ChainOrphans.Load())
	}
	f.reads.Store(0)
	if _, err := l.ReadBlock(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if f.reads.Load() != 1 {
		t.Fatal("orphan write populated the cache")
	}
}

func TestErroredWriteInvalidatesCache(t *testing.T) {
	f := newFake(bs, 0)
	l := newCachedLayer(t, f)
	ctx := context.Background()
	must(t, f.WriteBlock(ctx, 7, pat('a')))
	if _, err := l.ReadBlock(ctx, 7); err != nil { // fill
		t.Fatal(err)
	}
	f.failWrites.Store(true)
	if err := l.WriteBlock(ctx, 7, pat('b')); err == nil {
		t.Fatal("injected failure did not surface")
	}
	f.failWrites.Store(false)
	// Outcome of the failed swap is unknown: the cached value must be
	// gone, and the next read must consult the base store.
	f.reads.Store(0)
	if _, err := l.ReadBlock(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if f.reads.Load() != 1 {
		t.Fatal("stale entry survived an errored write")
	}
}

func TestStripeWritesInvalidate(t *testing.T) {
	f := newFake(bs, 0)
	l := newCachedLayer(t, f)
	ctx := context.Background()
	must(t, f.WriteBlock(ctx, 0, pat('a')))
	must(t, f.WriteBlock(ctx, 1, pat('b')))
	_, _ = l.ReadBlock(ctx, 0)
	_, _ = l.ReadBlock(ctx, 1)

	errs, _ := l.WriteStripes(ctx, []bulk.StripeWrite{{Addr: 0, Values: [][]byte{pat('x'), pat('y')}}})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	// Stripe writes carry no stamps: both blocks must have been
	// invalidated, so the next reads hit the base store.
	f.reads.Store(0)
	g0, _ := l.ReadBlock(ctx, 0)
	g1, _ := l.ReadBlock(ctx, 1)
	if !bytes.Equal(g0, pat('x')) || !bytes.Equal(g1, pat('y')) {
		t.Fatal("stripe write content lost")
	}
	if f.reads.Load() != 2 {
		t.Fatalf("base reads = %d, want 2 after invalidation", f.reads.Load())
	}
}

func TestSharedCacheCoherentAcrossLayers(t *testing.T) {
	// Two handles (layers) over one base share one cache: a write
	// through one must never leave the other serving the old value.
	f := newFake(bs, 0)
	l1, err := NewLayer(Options{Base: f, CacheBytes: 1 << 20, NoSalvage: true})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLayer(Options{Base: f, CacheBytes: 1 << 20, Cache: l1.cache, NoSalvage: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	must(t, l1.WriteBlock(ctx, 4, pat('1')))
	if got, _ := l2.ReadBlock(ctx, 4); !bytes.Equal(got, pat('1')) { // fills shared cache
		t.Fatalf("got %q", got)
	}
	must(t, l1.WriteBlock(ctx, 4, pat('2'))) // chains in the shared cache
	got, err := l2.ReadBlock(ctx, 4)
	if err != nil || !bytes.Equal(got, pat('2')) {
		t.Fatalf("sibling served stale value %q (%v)", got[:1], err)
	}
}

func TestStagingRegionCarvedFromBoundedCapacity(t *testing.T) {
	f := newFake(bs, 4096)
	l, err := NewLayer(Options{Base: f, SmallWrite: true, StagingBlocks: 8, NoSalvage: true})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(4096 - StagingSlots*8)
	if l.Capacity() != want {
		t.Fatalf("capacity = %d, want %d", l.Capacity(), want)
	}
	ctx := context.Background()
	if err := l.Write(ctx, want, 0, []byte("x")); err == nil {
		t.Fatal("write into the staging region accepted")
	}
	if _, err := l.ReadBlock(ctx, want); err == nil {
		t.Fatal("read of the staging region accepted")
	}
}

func TestSubBlockWriteAtRoutesThroughTier(t *testing.T) {
	f := newFake(bs, 0)
	l, err := NewLayer(Options{Base: f, SmallWrite: true, StagingBlocks: 8, NoSalvage: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Head, aligned middle, tail: 3 blocks + change.
	payload := bytes.Repeat([]byte{0xEE}, 3*bs)
	n, err := l.WriteAt(ctx, payload, 10)
	if err != nil || n != len(payload) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(payload))
	if _, err := l.ReadAt(ctx, got, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("sub-block span round trip failed")
	}
	// The base store's home blocks must NOT have been read-modify-
	// written for the head/tail before a flush: only the aligned middle
	// landed directly.
	if ts := l.TierStats(); ts.Commits.Load() == 0 {
		t.Fatal("no staged commits for the sub-block head/tail")
	}
	must(t, l.Flush(ctx))
	if _, err := l.ReadAt(ctx, got, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip failed after flush")
	}
}

func TestReadDoesNotLoseStagedBytesAcrossFlush(t *testing.T) {
	f := newFake(bs, 4096)
	f.gateParked = make(chan struct{})
	f.gateGo = make(chan struct{})
	l, err := NewLayer(Options{Base: f, SmallWrite: true, StagingBlocks: 8, NoSalvage: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	must(t, l.Write(ctx, 7, 3, []byte("hot"))) // staged, acknowledged

	// Park a reader after it fetched the PRE-merge base block, run a
	// full flush (merge staged bytes, drop the overlay), then let the
	// reader patch and return: the acknowledged bytes must be there.
	f.gateAddr = 7
	f.gateArmed.Store(true)
	type res struct {
		blk []byte
		err error
	}
	done := make(chan res, 1)
	go func() {
		blk, err := l.ReadBlock(ctx, 7)
		done <- res{blk, err}
	}()
	<-f.gateParked
	must(t, l.Flush(ctx))
	close(f.gateGo)
	r := <-done
	must(t, r.err)
	if string(r.blk[3:6]) != "hot" {
		t.Fatalf("read across flush lost acknowledged staged bytes: %q", r.blk[:8])
	}
}

func TestWriteAtRejectsStagingRegionOnUnbounded(t *testing.T) {
	f := newFake(bs, 0)
	l, err := NewLayer(Options{Base: f, SmallWrite: true, StagingBlocks: 8, NoSalvage: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Sub-block head landing inside another client's staging slot.
	off := int64(l.regionStart)*int64(bs) + 5
	if _, err := l.WriteAt(ctx, []byte("oops"), off); !errors.Is(err, bulk.ErrOutOfRange) {
		t.Fatalf("sub-block write into the staging region: %v", err)
	}
	// Block-aligned span overlapping the region's first block.
	if _, err := l.WriteAt(ctx, make([]byte, 2*bs), int64(l.regionStart-1)*int64(bs)); !errors.Is(err, bulk.ErrOutOfRange) {
		t.Fatalf("aligned span overlapping the staging region: %v", err)
	}
	// Facade stripe writes are validated per covered block.
	errs, _ := l.WriteStripes(ctx, []bulk.StripeWrite{{Addr: l.regionStart, Values: [][]byte{pat('x'), pat('y')}}})
	if !errors.Is(errs[0], bulk.ErrOutOfRange) {
		t.Fatalf("stripe write into the staging region: %v", errs[0])
	}
	// The block just below the region is still writable.
	if _, err := l.WriteAt(ctx, []byte("ok"), int64(l.regionStart-1)*int64(bs)+1); err != nil {
		t.Fatalf("write below the region rejected: %v", err)
	}
}

func TestZeroStampFillNeverChains(t *testing.T) {
	f := newFake(bs, 0)
	l := newCachedLayer(t, f)
	ctx := context.Background()
	// Block 11 was never written: primary reads return zeros under the
	// zero TID. The content is a valid read, so it caches — cold
	// working sets must not pay one RPC per read forever.
	for i := 0; i < 3; i++ {
		if _, err := l.ReadBlock(ctx, 11); err != nil {
			t.Fatal(err)
		}
	}
	if f.reads.Load() != 1 {
		t.Fatalf("base reads = %d, want 1 (zero-stamp fill not cached)", f.reads.Load())
	}
	// But the zero stamp proves nothing: the first write to the block
	// (otid zero) must chain-break the entry, not install over it —
	// zero==zero is not evidence of serialization order.
	must(t, l.WriteBlock(ctx, 11, pat('w')))
	st := l.CacheStats()
	if st.ChainInstalls.Load() != 0 || st.ChainBreaks.Load() != 1 {
		t.Fatalf("zero==zero treated as a chain: installs=%d breaks=%d",
			st.ChainInstalls.Load(), st.ChainBreaks.Load())
	}
	blk, err := l.ReadBlock(ctx, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blk, pat('w')) {
		t.Fatalf("post-write read = %q...", blk[:8])
	}
	if f.reads.Load() != 2 {
		t.Fatalf("base reads = %d, want 2 (write should evict, next read refills)", f.reads.Load())
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// Package tier composes the two halves of the small-I/O tier — the
// hot-read cache (internal/readcache) and the group-committed
// small-write stage (internal/smallwrite) — with the pipelined bulk
// engine, behind one Layer that the facades embed.
//
// Placement of the pieces:
//
//	ReadBlock  -> cache (fill on primary stamped reads) -> base
//	             ... then staged bytes patched over the result
//	WriteBlock -> base (stamped swap) -> supersede staged -> cache install
//	WriteAt    -> sub-block head/tail -> small-write stage
//	             aligned middle       -> bulk engine (stripe batches)
//	Flush      -> merge staged bytes into home blocks (read barrier)
//
// The staging segment lives inside the erasure-coded address space
// itself: on a bounded store the Layer carves StagingSlots per-client
// extents off the top of the capacity (callers see the reduced
// capacity); on an unbounded store the extents sit at a fixed high
// address far beyond any practical working set.
package tier

import (
	"context"
	"errors"
	"fmt"
	"io"

	"ecstore/internal/bulk"
	"ecstore/internal/core"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/readcache"
	"ecstore/internal/smallwrite"
)

// StagingSlots is the number of disjoint per-client staging extents a
// store reserves when the small-write tier is enabled. Each protocol
// client identity (which the AJX protocol already requires to be
// unique per concurrent writer) owns one slot, so two Store handles
// never append into each other's segment.
const StagingSlots = 16

// unboundedStagingBase positions the staging region on stores with an
// unbounded address space: block 2^44, beyond any practical working
// set (16 TiB of 1-byte blocks).
const unboundedStagingBase uint64 = 1 << 44

// DefaultStagingBlocks is the per-client staging segment length when
// Options leaves it zero.
const DefaultStagingBlocks = 256

// Stamped is the view of an erasure-coded store the Layer composes
// over: the plain bulk target plus block operations that carry AJX
// write identifiers. The stamps are what make the cache's invalidation
// provable — see internal/readcache.
type Stamped interface {
	bulk.Target
	// ReadBlockStamped reads one block with the newest write identifier
	// the serving node held (see core.ReadStamp).
	ReadBlockStamped(ctx context.Context, addr uint64) ([]byte, core.ReadStamp, error)
	// WriteBlockStamped writes one block, returning the write's own
	// identifier and the identifier of the write it was serialized
	// directly after.
	WriteBlockStamped(ctx context.Context, addr uint64, data []byte) (ntid, otid proto.TID, err error)
}

// Options configures a Layer.
type Options struct {
	// Base is the stamped erasure-coded store. Required.
	Base Stamped
	// SmallWrite enables the staged small-write tier.
	SmallWrite bool
	// StagingBlocks is the per-client staging segment length in blocks.
	// Default DefaultStagingBlocks. Only meaningful with SmallWrite.
	StagingBlocks uint64
	// ClientSlot selects this handle's staging extent, in [0,
	// StagingSlots). Facades derive it from the protocol client ID.
	ClientSlot int
	// CacheBytes bounds the hot-read cache; 0 disables it.
	CacheBytes int64
	// Cache, when non-nil, is a pre-built cache shared with sibling
	// layers (all client handles of one cluster form one coherence
	// domain — a write's install/invalidate must be visible to every
	// reader in the process). Overrides CacheBytes.
	Cache *readcache.Cache
	// MaxBatch bounds the records per small-write group commit.
	MaxBatch int
	// MaxInFlight and ReadAhead configure the bulk engine (see
	// bulk.Options).
	MaxInFlight int
	ReadAhead   int
	// NoSalvage skips the startup staging-segment replay (tests).
	NoSalvage bool
	// Obs receives readcache.*, smallwrite.*, and bulk.* metrics.
	Obs *obs.Registry
}

// Layer is the tier-aware I/O front of a Store facade. It is safe for
// concurrent use.
type Layer struct {
	base   Stamped
	cache  *readcache.Cache // nil when CacheBytes == 0
	tier   *smallwrite.Tier // nil when !SmallWrite
	engine *bulk.Engine
	bs     int

	// usable is the capacity visible to callers: the base capacity
	// minus the staging region on bounded stores, 0 when unbounded.
	usable uint64
	// regionStart/regionEnd bound the whole staging region (all slots),
	// rejected from caller addresses on unbounded stores.
	regionStart, regionEnd uint64
}

// NewLayer validates the options, carves the staging region, and (when
// the small-write tier is enabled) salvages this client's staging
// segment before serving traffic.
func NewLayer(o Options) (*Layer, error) {
	if o.Base == nil {
		return nil, errors.New("tier: Options.Base is required")
	}
	if o.ClientSlot < 0 || o.ClientSlot >= StagingSlots {
		return nil, fmt.Errorf("tier: ClientSlot %d out of range [0,%d)", o.ClientSlot, StagingSlots)
	}
	l := &Layer{base: o.Base, bs: o.Base.BlockSize(), usable: o.Base.Capacity()}
	if o.Cache != nil {
		l.cache = o.Cache
	} else if o.CacheBytes > 0 {
		l.cache = readcache.New(o.CacheBytes, o.Obs)
	}
	if o.SmallWrite {
		blocks := o.StagingBlocks
		if blocks == 0 {
			blocks = DefaultStagingBlocks
		}
		region := StagingSlots * blocks
		var sBase uint64
		if cap := o.Base.Capacity(); cap != 0 {
			if region >= cap {
				return nil, fmt.Errorf("tier: staging region %d blocks exceeds capacity %d", region, cap)
			}
			l.usable = cap - region
			l.regionStart, l.regionEnd = l.usable, cap
			sBase = l.usable + uint64(o.ClientSlot)*blocks
		} else {
			l.regionStart = unboundedStagingBase
			l.regionEnd = unboundedStagingBase + region
			sBase = unboundedStagingBase + uint64(o.ClientSlot)*blocks
		}
		t, err := smallwrite.New(smallwrite.Options{
			Base:          o.Base,
			StagingBase:   sBase,
			StagingBlocks: blocks,
			MaxBatch:      o.MaxBatch,
			MaxInFlight:   o.MaxInFlight,
			OnApply: func(addr uint64) {
				if l.cache != nil {
					l.cache.Invalidate(addr)
				}
			},
			Obs: o.Obs,
		})
		if err != nil {
			return nil, err
		}
		l.tier = t
		if !o.NoSalvage {
			if _, err := t.Salvage(context.Background()); err != nil {
				return nil, fmt.Errorf("tier: salvage staging segment: %w", err)
			}
		}
	}
	l.engine = bulk.New((*engineTarget)(l), bulk.Options{
		MaxInFlight: o.MaxInFlight,
		ReadAhead:   o.ReadAhead,
		Obs:         o.Obs,
	})
	return l, nil
}

// BlockSize returns the block size in bytes.
func (l *Layer) BlockSize() int { return l.bs }

// Capacity returns the addressable block count visible to callers: the
// base capacity minus the staging region, or 0 when unbounded.
func (l *Layer) Capacity() uint64 { return l.usable }

// CacheStats exposes the hot-read cache's counters, or nil when the
// cache is disabled.
func (l *Layer) CacheStats() *readcache.Stats {
	if l.cache == nil {
		return nil
	}
	return l.cache.Stats()
}

// TierStats exposes the small-write tier's counters, or nil when the
// tier is disabled.
func (l *Layer) TierStats() *smallwrite.Stats {
	if l.tier == nil {
		return nil
	}
	return l.tier.Stats()
}

// checkAddr rejects caller addresses that fall in the staging region.
func (l *Layer) checkAddr(addr uint64) error {
	if l.usable != 0 && addr >= l.usable {
		return fmt.Errorf("tier: address %d beyond capacity %d: %w", addr, l.usable, bulk.ErrOutOfRange)
	}
	if l.usable == 0 && addr >= l.regionStart && addr < l.regionEnd {
		return fmt.Errorf("tier: address %d inside the staging region: %w", addr, bulk.ErrOutOfRange)
	}
	return nil
}

// checkSpan rejects byte spans that touch the staging region of an
// unbounded store. WriteAt needs it as a whole-span check: its staged
// head/tail and the engine's stripe fast path do not re-run checkAddr
// per block the way ReadBlock/WriteBlock do, and a span landing inside
// the region would corrupt a client's staging segment. (On bounded
// stores the region sits beyond Capacity and the capacity check covers
// it.)
func (l *Layer) checkSpan(off int64, n int) error {
	if n == 0 || l.usable != 0 || l.regionEnd == l.regionStart {
		return nil
	}
	first := uint64(off) / uint64(l.bs)
	last := (uint64(off) + uint64(n) - 1) / uint64(l.bs)
	if first < l.regionEnd && last >= l.regionStart {
		return fmt.Errorf("tier: span [%d,%d) overlaps the staging region: %w", off, off+int64(n), bulk.ErrOutOfRange)
	}
	return nil
}

// ReadBlock reads one block: cache first, base on a miss (filling the
// cache only from primary stamped replies), then staged small-write
// bytes patched over the result.
//
// The staged records are snapshotted BEFORE the base read: a flush
// running concurrently merges records into the base block and then
// drops them from the overlay, and a read that fetched pre-merge
// content but patched post-drop would return a block missing
// acknowledged bytes. With the snapshot, either interleaving yields
// correct bytes — the flusher writes the merged block before dropping,
// so re-applying flushed records over post-merge content is idempotent.
func (l *Layer) ReadBlock(ctx context.Context, addr uint64) ([]byte, error) {
	if err := l.checkAddr(addr); err != nil {
		return nil, err
	}
	var snap smallwrite.Snapshot
	if l.tier != nil {
		snap = l.tier.Snapshot(addr)
	}
	blk, err := l.readBase(ctx, addr)
	if err != nil {
		return nil, err
	}
	if l.tier != nil {
		snap.Apply(blk)
		// Records staged while the base read was in flight.
		l.tier.Patch(addr, blk)
	}
	return blk, nil
}

// readBase reads the base-store content of addr through the cache.
// The returned slice is caller-owned.
func (l *Layer) readBase(ctx context.Context, addr uint64) ([]byte, error) {
	if l.cache == nil {
		return l.base.ReadBlock(ctx, addr)
	}
	if v, _, ok := l.cache.Get(addr); ok {
		return v, nil
	}
	tk := l.cache.BeginFill(addr)
	blk, st, err := l.base.ReadBlockStamped(ctx, addr)
	if err != nil {
		l.cache.AbortFill(tk)
		return nil, err
	}
	if st.Primary {
		// A zero TID on a primary reply is ReadStamp's "no identifier"
		// value (unwritten block, or a recentlist trimmed by GC). The
		// content is still a valid read of the register, so it is safe
		// to cache — the cache treats a zero stamp as unprovable, so a
		// later write can only chain-break (invalidate) the entry,
		// never chain-install over it.
		l.cache.CommitFill(tk, blk, st.TID)
	} else {
		// Hedged, degraded, or reconstructed reads carry no usable
		// stamp and may not reflect the primary's content — never fill.
		l.cache.AbortFill(tk)
	}
	return blk, nil
}

// WriteBlock writes one full block through the stamped protocol path,
// superseding any staged small writes it overwrites and installing the
// value in the cache under its write identifier.
//
// Ordering matters twice here. The cache install happens BEFORE the
// overlay drop, so a reader that finds the overlay empty can only see
// post-write cache or base content. And when staged records were
// dropped, a durable supersede tombstone is appended to the staging
// segment — after the tier locks are released, since a segment-full
// flush inside the append needs them — before the write returns, so a
// post-crash Salvage cannot replay the overwritten records.
func (l *Layer) WriteBlock(ctx context.Context, addr uint64, data []byte) error {
	if err := l.checkAddr(addr); err != nil {
		return err
	}
	if l.tier == nil && l.cache == nil {
		return l.base.WriteBlock(ctx, addr, data)
	}
	var seq uint64
	var unlock func()
	if l.tier != nil {
		seq, unlock = l.tier.LockAddrs(addr)
	}
	ntid, otid, err := l.base.WriteBlockStamped(ctx, addr, data)
	if err != nil {
		if l.cache != nil {
			// Outcome unknown: the swap may have landed. Never serve a
			// value we cannot order against it.
			l.cache.Invalidate(addr)
		}
		if unlock != nil {
			unlock()
		}
		return err
	}
	if l.cache != nil {
		l.cache.Install(addr, data, ntid, otid)
	}
	needMark := false
	if l.tier != nil {
		// Only records staged before the lock snapshot are overwritten;
		// a concurrent small write sequenced after it survives.
		needMark = l.tier.Supersede(addr, seq)
	}
	if unlock != nil {
		unlock()
	}
	if needMark {
		if err := l.tier.SupersedeDurable(ctx, []smallwrite.SupersedeMark{{Addr: addr, BeforeSeq: seq}}); err != nil {
			return fmt.Errorf("tier: durable supersede: %w", err)
		}
	}
	return nil
}

// Write stages one sub-block write (len(data) bytes at byte offset off
// inside block addr) in the small-write tier. The tier must be
// enabled.
func (l *Layer) Write(ctx context.Context, addr uint64, off int, data []byte) error {
	if l.tier == nil {
		return errors.New("tier: small-write tier disabled")
	}
	if err := l.checkAddr(addr); err != nil {
		return err
	}
	return l.tier.Write(ctx, addr, off, data)
}

// writeStripes routes the engine's stripe batches to the base store,
// then reconciles the tier and cache for every block the batch
// covered. Stripe writes carry no per-write stamps, so cached entries
// are invalidated rather than chained; like WriteBlock, the cache is
// reconciled before the overlay drop, and dropped staged records get a
// durable supersede tombstone (after the tier locks are released)
// before the affected writes are reported as succeeded.
func (l *Layer) writeStripes(ctx context.Context, writes []bulk.StripeWrite) ([]error, bulk.WriteStats) {
	if l.tier == nil && l.cache == nil {
		return l.base.WriteStripes(ctx, writes)
	}
	var seq uint64
	var unlock func()
	if l.tier != nil {
		addrs := make([]uint64, 0, len(writes)*l.base.StripeK())
		for _, w := range writes {
			for j := range w.Values {
				addrs = append(addrs, w.Addr+uint64(j))
			}
		}
		seq, unlock = l.tier.LockAddrs(addrs...)
	}
	errs, stats := l.base.WriteStripes(ctx, writes)
	var marks []smallwrite.SupersedeMark
	var markIdx []int // writes index each mark belongs to
	for i, w := range writes {
		for j := range w.Values {
			a := w.Addr + uint64(j)
			if l.cache != nil {
				l.cache.Invalidate(a)
			}
			if l.tier != nil && errs[i] == nil && l.tier.Supersede(a, seq) {
				marks = append(marks, smallwrite.SupersedeMark{Addr: a, BeforeSeq: seq})
				markIdx = append(markIdx, i)
			}
		}
	}
	if unlock != nil {
		unlock()
	}
	if len(marks) > 0 {
		if err := l.tier.SupersedeDurable(ctx, marks); err != nil {
			err = fmt.Errorf("tier: durable supersede: %w", err)
			for _, i := range markIdx {
				if errs[i] == nil {
					errs[i] = err
				}
			}
		}
	}
	return errs, stats
}

// WriteStripes writes full stripes through the base store with tier
// and cache reconciliation (see writeStripes). Facade batch entry
// points route through it; every covered block address is validated
// against the staging region first (the engine's internal stripe
// batches skip this — their spans were validated at WriteAt).
func (l *Layer) WriteStripes(ctx context.Context, writes []bulk.StripeWrite) ([]error, bulk.WriteStats) {
	for _, w := range writes {
		for j := range w.Values {
			if err := l.checkAddr(w.Addr + uint64(j)); err != nil {
				errs := make([]error, len(writes))
				for i := range errs {
					errs[i] = err
				}
				return errs, bulk.WriteStats{}
			}
		}
	}
	return l.writeStripes(ctx, writes)
}

// ReadAt reads len(p) bytes at byte offset off through the bulk engine
// (whose block reads go through the cache and staged-byte patching).
func (l *Layer) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	return l.engine.ReadAt(ctx, p, off)
}

// WriteAt writes p at byte offset off. With the small-write tier
// enabled, the sub-block head and tail are absorbed by the tier (one
// group-committed staging append instead of a read-modify-write swap
// round each) and only the block-aligned middle takes the engine's
// stripe path. Staged bytes are durable when WriteAt returns — the
// staging segment is erasure-coded like everything else — and reach
// their home blocks at the next Flush or segment-full merge.
func (l *Layer) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	if l.tier == nil {
		return l.engine.WriteAt(ctx, p, off)
	}
	if off < 0 {
		return 0, fmt.Errorf("tier: negative offset %d: %w", off, bulk.ErrOutOfRange)
	}
	if l.usable != 0 && off+int64(len(p)) > int64(l.usable)*int64(l.bs) {
		return 0, fmt.Errorf("tier: write [%d,%d) beyond capacity: %w", off, off+int64(len(p)), bulk.ErrOutOfRange)
	}
	if err := l.checkSpan(off, len(p)); err != nil {
		return 0, err
	}
	bs := int64(l.bs)
	n := 0
	if r := off % bs; r != 0 && len(p) > 0 {
		want := int(bs - r)
		if want > len(p) {
			want = len(p)
		}
		if err := l.tier.Write(ctx, uint64(off/bs), int(r), p[:want]); err != nil {
			return n, fmt.Errorf("%w: staging head: %w", bulk.ErrShortWrite, err)
		}
		n += want
		p = p[want:]
		off += int64(want)
	}
	if mid := (len(p) / l.bs) * l.bs; mid > 0 {
		m, err := l.engine.WriteAt(ctx, p[:mid], off)
		n += m
		if err != nil {
			return n, err
		}
		p = p[mid:]
		off += int64(mid)
	}
	if len(p) > 0 {
		if err := l.tier.Write(ctx, uint64(off/bs), 0, p); err != nil {
			return n, fmt.Errorf("%w: staging tail: %w", bulk.ErrShortWrite, err)
		}
		n += len(p)
	}
	return n, nil
}

// Reader streams nBytes from byte offset off with readahead.
func (l *Layer) Reader(ctx context.Context, off, nBytes int64) io.Reader {
	return l.engine.Reader(ctx, off, nBytes)
}

// Flush merges every staged small write into its home block and resets
// the staging segment: a barrier after which all acknowledged bytes
// are in their final blocks. A no-op when the tier is disabled.
func (l *Layer) Flush(ctx context.Context) error {
	if l.tier == nil {
		return nil
	}
	return l.tier.Flush(ctx)
}

// Close flushes the small-write tier and refuses further staged
// writes.
func (l *Layer) Close() error {
	if l.tier == nil {
		return nil
	}
	return l.tier.Close(context.Background())
}

// engineTarget adapts the Layer to bulk.Target so engine I/O flows
// through the cache and tier reconciliation paths.
type engineTarget Layer

func (t *engineTarget) BlockSize() int      { return t.bs }
func (t *engineTarget) StripeK() int        { return t.base.StripeK() }
func (t *engineTarget) GroupBlocks() uint64 { return t.base.GroupBlocks() }
func (t *engineTarget) Capacity() uint64    { return t.usable }

func (t *engineTarget) ReadBlock(ctx context.Context, addr uint64) ([]byte, error) {
	return (*Layer)(t).ReadBlock(ctx, addr)
}

func (t *engineTarget) WriteBlock(ctx context.Context, addr uint64, data []byte) error {
	return (*Layer)(t).WriteBlock(ctx, addr, data)
}

func (t *engineTarget) WriteStripes(ctx context.Context, writes []bulk.StripeWrite) ([]error, bulk.WriteStats) {
	return (*Layer)(t).writeStripes(ctx, writes)
}

var _ bulk.Target = (*engineTarget)(nil)

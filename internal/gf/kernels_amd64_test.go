//go:build amd64 && !gfpure

package gf

import (
	"fmt"
	"testing"
)

// TestKernelLevelSweep re-runs the full differential suite at every
// kernel tier up to the one CPUID detected, so the SSSE3 and generic
// paths get exercised even on AVX2 hardware. kernelLevel is package
// state, so the sweep must not run in parallel with other tests that
// call the kernels — Go runs top-level tests in one goroutine unless
// they opt into t.Parallel(), and none here do.
func TestKernelLevelSweep(t *testing.T) {
	detected := kernelLevel
	defer func() { kernelLevel = detected }()
	names := []string{"generic", "ssse3", "avx2"}
	for lvl := kernelGeneric; lvl <= detected; lvl++ {
		t.Run(fmt.Sprintf("level=%s", names[lvl]), func(t *testing.T) {
			kernelLevel = lvl
			runDifferential(t)
		})
	}
}

func TestDetectedLevelReported(t *testing.T) {
	names := []string{"generic", "ssse3", "avx2"}
	t.Logf("kernel tier in use: %s", names[kernelLevel])
}

package gf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatalf("Add(0x53, 0xCA) = %#x, want %#x", Add(0x53, 0xCA), 0x53^0xCA)
	}
	if Sub(0x53, 0xCA) != Add(0x53, 0xCA) {
		t.Fatal("Sub must equal Add in characteristic-2 fields")
	}
}

func TestMulKnownValues(t *testing.T) {
	tests := []struct {
		a, b, want byte
	}{
		{0, 0, 0},
		{0, 7, 0},
		{1, 1, 1},
		{1, 0xFF, 0xFF},
		{2, 2, 4},
		{2, 0x80, 0x1D}, // 0x100 reduced by 0x11D
	}
	for _, tt := range tests {
		if got := Mul(tt.a, tt.b); got != tt.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", tt.a, tt.b, got, tt.want)
		}
	}
}

// mulSlow is a bitwise carry-less multiply with reduction, used as an
// independent oracle for the table-driven implementation.
func mulSlow(a, b byte) byte {
	var prod int
	ai, bi := int(a), int(b)
	for i := 0; i < 8; i++ {
		if bi&(1<<i) != 0 {
			prod ^= ai << i
		}
	}
	for i := 15; i >= 8; i-- {
		if prod&(1<<i) != 0 {
			prod ^= Polynomial << (i - 8)
		}
	}
	return byte(prod)
}

func TestMulMatchesBitwiseOracle(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	// Commutativity and associativity of multiplication.
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(a, b) == Mul(b, a) && Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}, nil); err != nil {
		t.Error(err)
	}
	// Distributivity over addition.
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, nil); err != nil {
		t.Error(err)
	}
	// Multiplicative identity and inverse.
	if err := quick.Check(func(a byte) bool {
		if a == 0 {
			return Mul(a, 1) == 0
		}
		return Mul(a, 1) == a && Mul(a, Inv(a)) == 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDiv(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div(%#x, %#x)*%#x != %#x", a, b, b, a)
			}
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%#x)) != %#x", a, a)
		}
	}
}

func TestExpNegativeAndLarge(t *testing.T) {
	if Exp(-1) != Exp(254) {
		t.Errorf("Exp(-1) = %#x, want Exp(254) = %#x", Exp(-1), Exp(254))
	}
	if Exp(255) != Exp(0) {
		t.Errorf("Exp(255) = %#x, want Exp(0) = %#x", Exp(255), Exp(0))
	}
	if Exp(1000) != Exp(1000%255) {
		t.Error("Exp does not reduce large exponents")
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Error("Pow(0, 0) must be 1 by convention")
	}
	if Pow(0, 5) != 0 {
		t.Error("Pow(0, 5) must be 0")
	}
	for a := 1; a < 256; a++ {
		acc := byte(1)
		for e := 0; e < 10; e++ {
			if got := Pow(byte(a), e); got != acc {
				t.Fatalf("Pow(%#x, %d) = %#x, want %#x", a, e, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

func TestGeneratorHasFullOrder(t *testing.T) {
	seen := make(map[byte]bool)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator cycle shorter than 255 (repeat at %d)", i)
		}
		seen[x] = true
		x = Mul(x, 2)
	}
	if x != 1 {
		t.Fatal("generator^255 != 1")
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 0x80, 0xFF}
	dst := make([]byte, len(src))
	MulSlice(0x1B, dst, src)
	for i := range src {
		if dst[i] != Mul(0x1B, src[i]) {
			t.Fatalf("MulSlice mismatch at %d", i)
		}
	}
	// c == 0 clears, c == 1 copies.
	MulSlice(0, dst, src)
	if !bytes.Equal(dst, make([]byte, len(src))) {
		t.Error("MulSlice(0, ...) did not clear dst")
	}
	MulSlice(1, dst, src)
	if !bytes.Equal(dst, src) {
		t.Error("MulSlice(1, ...) did not copy src")
	}
}

func TestMulSliceAliasing(t *testing.T) {
	buf := []byte{1, 2, 3, 4}
	want := make([]byte, len(buf))
	MulSlice(7, want, buf)
	MulSlice(7, buf, buf)
	if !bytes.Equal(buf, want) {
		t.Error("in-place MulSlice differs from out-of-place")
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{5, 6, 7, 8}
	dst := []byte{1, 2, 3, 4}
	want := make([]byte, 4)
	for i := range want {
		want[i] = dst[i] ^ Mul(9, src[i])
	}
	MulAddSlice(9, dst, src)
	if !bytes.Equal(dst, want) {
		t.Errorf("MulAddSlice = %v, want %v", dst, want)
	}
	// Coefficient zero must be a no-op.
	cp := append([]byte(nil), dst...)
	MulAddSlice(0, dst, src)
	if !bytes.Equal(dst, cp) {
		t.Error("MulAddSlice(0, ...) modified dst")
	}
}

func TestAddSlice(t *testing.T) {
	a := make([]byte, 37) // odd size exercises the tail loop
	b := make([]byte, 37)
	for i := range a {
		a[i] = byte(i)
		b[i] = byte(3 * i)
	}
	want := make([]byte, 37)
	for i := range want {
		want[i] = a[i] ^ b[i]
	}
	AddSlice(a, b)
	if !bytes.Equal(a, want) {
		t.Error("AddSlice mismatch")
	}
	// Applying the same addition twice must restore the original.
	AddSlice(a, b)
	for i := range a {
		if a[i] != byte(i) {
			t.Fatal("AddSlice is not an involution")
		}
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(1, make([]byte, 2), make([]byte, 3)) },
		"MulAddSlice": func() { MulAddSlice(1, make([]byte, 2), make([]byte, 3)) },
		"AddSlice":    func() { AddSlice(make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestMulRow(t *testing.T) {
	row := MulRow(0x35)
	for x := 0; x < 256; x++ {
		if row[x] != Mul(0x35, byte(x)) {
			t.Fatalf("MulRow(0x35)[%#x] incorrect", x)
		}
	}
}

// Package ref holds the byte-at-a-time reference implementation of
// the GF(2^8) slice kernels. Package gf ships wide kernels (packed
// uint64 words, and SIMD nibble-split lookups on amd64) on its hot
// path; this package keeps the original, obviously-correct scalar
// loops as an independent oracle for differential and fuzz testing.
//
// The field construction is duplicated from package gf on purpose —
// importing gf here would let a table-generation bug cancel itself out
// in the comparison. The only shared fact is the primitive polynomial,
// and ref builds its multiplication table by shift-and-reduce rather
// than through log/exp tables, so even a logarithm-table bug in gf is
// visible against it.
package ref

// Polynomial is the primitive polynomial of the field,
// x^8 + x^4 + x^3 + x^2 + 1, matching gf.Polynomial.
const Polynomial = 0x11D

var mulTable [256][256]byte

func init() {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			mulTable[a][b] = mulBitwise(byte(a), byte(b))
		}
	}
}

// mulBitwise is carry-less multiplication with polynomial reduction —
// the definition of the field product, independent of any table.
func mulBitwise(a, b byte) byte {
	var prod int
	for i := 0; i < 8; i++ {
		if b&(1<<i) != 0 {
			prod ^= int(a) << i
		}
	}
	for i := 15; i >= 8; i-- {
		if prod&(1<<i) != 0 {
			prod ^= Polynomial << (i - 8)
		}
	}
	return byte(prod)
}

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// MulSlice sets dst[i] = c*src[i] for every i, one byte at a time.
// dst and src must have the same length; they may alias exactly.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf/ref: MulSlice length mismatch")
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// MulAddSlice sets dst[i] ^= c*src[i] for every i, one byte at a
// time. dst and src must have the same length and must not alias.
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf/ref: MulAddSlice length mismatch")
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// AddSlice sets dst[i] ^= src[i] for every i, one byte at a time.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf/ref: AddSlice length mismatch")
	}
	for i, s := range src {
		dst[i] ^= s
	}
}

package gf

import (
	"math/rand"
	"testing"

	"ecstore/internal/gf/ref"
)

// Kernel microbenches at the two block sizes the repo's experiments
// use: 1 KiB (protocol benches) and 16 KiB (the headline data-path
// size). The Ref variants measure the byte-at-a-time oracle so the
// BENCH_kernels.json before/after comparison lives in one run.

func benchBlocks(b *testing.B, n int) (dst, src []byte) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	dst = make([]byte, n)
	src = make([]byte, n)
	rng.Read(src)
	rng.Read(dst)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	return dst, src
}

func BenchmarkMulSlice1K(b *testing.B) {
	dst, src := benchBlocks(b, 1024)
	for i := 0; i < b.N; i++ {
		MulSlice(0x8e, dst, src)
	}
}

func BenchmarkMulSlice16K(b *testing.B) {
	dst, src := benchBlocks(b, 16384)
	for i := 0; i < b.N; i++ {
		MulSlice(0x8e, dst, src)
	}
}

func BenchmarkMulAddSlice1K(b *testing.B) {
	dst, src := benchBlocks(b, 1024)
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x8e, dst, src)
	}
}

func BenchmarkMulAddSlice16K(b *testing.B) {
	dst, src := benchBlocks(b, 16384)
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x8e, dst, src)
	}
}

func BenchmarkAddSlice1K(b *testing.B) {
	dst, src := benchBlocks(b, 1024)
	for i := 0; i < b.N; i++ {
		AddSlice(dst, src)
	}
}

func BenchmarkAddSlice16K(b *testing.B) {
	dst, src := benchBlocks(b, 16384)
	for i := 0; i < b.N; i++ {
		AddSlice(dst, src)
	}
}

func BenchmarkRefMulSlice16K(b *testing.B) {
	dst, src := benchBlocks(b, 16384)
	for i := 0; i < b.N; i++ {
		ref.MulSlice(0x8e, dst, src)
	}
}

func BenchmarkRefMulAddSlice16K(b *testing.B) {
	dst, src := benchBlocks(b, 16384)
	for i := 0; i < b.N; i++ {
		ref.MulAddSlice(0x8e, dst, src)
	}
}

func BenchmarkRefAddSlice16K(b *testing.B) {
	dst, src := benchBlocks(b, 16384)
	for i := 0; i < b.N; i++ {
		ref.AddSlice(dst, src)
	}
}

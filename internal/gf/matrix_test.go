package gf

import (
	"errors"
	"math/rand"
	"testing"
)

func TestIdentityMatrix(t *testing.T) {
	m := IdentityMatrix(4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if m.At(r, c) != want {
				t.Fatalf("identity[%d][%d] = %d", r, c, m.At(r, c))
			}
		}
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(3, 3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			m.Set(r, c, byte(rng.Intn(256)))
		}
	}
	got := m.Mul(IdentityMatrix(3))
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if got.At(r, c) != m.At(r, c) {
				t.Fatal("M*I != M")
			}
		}
	}
}

func TestMatrixInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				m.Set(r, c, byte(rng.Intn(256)))
			}
		}
		inv, err := m.Invert()
		if err != nil {
			continue // singular random matrix; skip
		}
		prod := m.Mul(inv)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want := byte(0)
				if r == c {
					want = 1
				}
				if prod.At(r, c) != want {
					t.Fatalf("trial %d: M*M^-1 != I at (%d,%d)", trial, r, c)
				}
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 5)
	m.Set(1, 0, 3)
	m.Set(1, 1, 5)
	if _, err := m.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Invert of singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestInvertZeroMatrix(t *testing.T) {
	m := NewMatrix(3, 3)
	if _, err := m.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Invert of zero matrix: err = %v, want ErrSingular", err)
	}
}

func TestVandermondeAnyKRowsInvertible(t *testing.T) {
	// The defining property for MDS codes: every selection of `cols`
	// rows from a Vandermonde matrix over distinct points is
	// invertible. Check exhaustively for a small shape.
	const rows, cols = 8, 3
	v := VandermondeMatrix(rows, cols)
	var sel [cols]int
	var recurse func(start, depth int)
	count := 0
	recurse = func(start, depth int) {
		if depth == cols {
			sub := v.SubMatrix(sel[:])
			if _, err := sub.Invert(); err != nil {
				t.Fatalf("rows %v not invertible", sel)
			}
			count++
			return
		}
		for r := start; r < rows; r++ {
			sel[depth] = r
			recurse(r+1, depth+1)
		}
	}
	recurse(0, 0)
	if count != 56 { // C(8,3)
		t.Fatalf("checked %d selections, want 56", count)
	}
}

func TestSubMatrix(t *testing.T) {
	v := VandermondeMatrix(5, 2)
	sub := v.SubMatrix([]int{4, 1})
	for c := 0; c < 2; c++ {
		if sub.At(0, c) != v.At(4, c) || sub.At(1, c) != v.At(1, c) {
			t.Fatal("SubMatrix copied wrong rows")
		}
	}
}

func TestMulVec(t *testing.T) {
	// Multiplying blocks through an invertible matrix and then its
	// inverse must restore the original blocks.
	rng := rand.New(rand.NewSource(7))
	const n, blockLen = 4, 64
	var m *Matrix
	for {
		m = NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				m.Set(r, c, byte(rng.Intn(256)))
			}
		}
		if _, err := m.Invert(); err == nil {
			break
		}
	}
	inv, _ := m.Invert()

	in := make([][]byte, n)
	mid := make([][]byte, n)
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		in[i] = make([]byte, blockLen)
		rng.Read(in[i])
		mid[i] = make([]byte, blockLen)
		out[i] = make([]byte, blockLen)
	}
	m.MulVec(mid, in)
	inv.MulVec(out, mid)
	for i := 0; i < n; i++ {
		for j := 0; j < blockLen; j++ {
			if out[i][j] != in[i][j] {
				t.Fatalf("MulVec round trip mismatch at block %d byte %d", i, j)
			}
		}
	}
}

func TestMatrixClone(t *testing.T) {
	m := VandermondeMatrix(3, 3)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestMatrixString(t *testing.T) {
	if s := IdentityMatrix(2).String(); s == "" {
		t.Fatal("String returned empty")
	}
}

func TestNewMatrixInvalidDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 1) did not panic")
		}
	}()
	NewMatrix(0, 1)
}

func TestMatrixMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched shapes did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMatrixInvertNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Invert of non-square matrix did not panic")
		}
	}()
	_, _ = NewMatrix(2, 3).Invert()
}

func TestMulVecShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong shapes did not panic")
		}
	}()
	IdentityMatrix(2).MulVec(make([][]byte, 3), make([][]byte, 2))
}

package gf

import (
	"bytes"
	"math/rand"
	"testing"

	"ecstore/internal/gf/ref"
)

// diffLengths covers the kernel seams: empty, sub-word, exact word,
// word+1, vector boundaries (16/32) and their neighbours, multi-vector
// with ragged tails, and the two block sizes the repo benchmarks.
var diffLengths = []int{
	0, 1, 2, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 40,
	63, 64, 65, 100, 255, 256, 257, 1023, 1024, 1025, 16384, 16411,
}

// runDifferential compares the dispatched kernels against gf/ref over
// every coefficient crossed with every seam length, including the
// exact-alias mode MulSlice and AddSlice allow. It runs against
// whatever kernel tier is currently selected; the amd64 level-sweep
// test re-runs it per tier.
func runDifferential(t *testing.T) {
	t.Helper()
	rng := rand.New(rand.NewSource(0x11d))
	for _, n := range diffLengths {
		src := make([]byte, n)
		dstInit := make([]byte, n)
		rng.Read(src)
		rng.Read(dstInit)

		wantMul := make([]byte, n)
		wantMulAdd := make([]byte, n)
		wantAdd := make([]byte, n)
		got := make([]byte, n)

		copy(wantAdd, dstInit)
		ref.AddSlice(wantAdd, src)
		copy(got, dstInit)
		AddSlice(got, src)
		if !bytes.Equal(got, wantAdd) {
			t.Fatalf("AddSlice len=%d: fast kernel diverges from ref", n)
		}

		for c := 0; c < 256; c++ {
			ref.MulSlice(byte(c), wantMul, src)

			copy(got, dstInit)
			MulSlice(byte(c), got, src)
			if !bytes.Equal(got, wantMul) {
				t.Fatalf("MulSlice c=%#x len=%d: fast kernel diverges from ref", c, n)
			}

			// Exact aliasing (dst == src) is part of the MulSlice
			// contract — in-place scaling must still match.
			copy(got, src)
			MulSlice(byte(c), got, got)
			if !bytes.Equal(got, wantMul) {
				t.Fatalf("MulSlice c=%#x len=%d aliased: diverges from ref", c, n)
			}

			copy(wantMulAdd, dstInit)
			ref.MulAddSlice(byte(c), wantMulAdd, src)
			copy(got, dstInit)
			MulAddSlice(byte(c), got, src)
			if !bytes.Equal(got, wantMulAdd) {
				t.Fatalf("MulAddSlice c=%#x len=%d: fast kernel diverges from ref", c, n)
			}
		}
	}
}

func TestKernelsDifferential(t *testing.T) { runDifferential(t) }

// TestScalarMulMatchesRef pins the gf log/exp table construction to
// ref's independent shift-and-reduce product for all 65536 pairs.
func TestScalarMulMatchesRef(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), ref.Mul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x, %#x) = %#x, ref says %#x", a, b, got, want)
			}
		}
	}
}

// TestNibTable pins the nibble-split decomposition: for every c and x,
// lo[x&0x0f] ^ hi[x>>4] must equal c*x.
func TestNibTable(t *testing.T) {
	for c := 0; c < 256; c++ {
		tab := &nibTable[c]
		for x := 0; x < 256; x++ {
			if got, want := tab[x&0x0f]^tab[16+(x>>4)], ref.Mul(byte(c), byte(x)); got != want {
				t.Fatalf("nibTable c=%#x x=%#x: %#x != %#x", c, x, got, want)
			}
		}
	}
}

// TestRandomLengthsDifferential drives random lengths (beyond the
// seam table) with random coefficients, as a cheap property test.
func TestRandomLengthsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(4096)
		c := byte(rng.Intn(256))
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		want := append([]byte(nil), dst...)

		MulAddSlice(c, dst, src)
		ref.MulAddSlice(c, want, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("trial %d: MulAddSlice c=%#x len=%d diverges", trial, c, n)
		}
	}
}

func TestDiffLengthsName(t *testing.T) {
	// Guard the seam table against accidental edits dropping the
	// boundary cases the ISSUE calls out explicitly.
	required := map[int]bool{0: false, 1: false, 7: false, 8: false, 9: false}
	for _, n := range diffLengths {
		if _, ok := required[n]; ok {
			required[n] = true
		}
	}
	for n, seen := range required {
		if !seen {
			t.Fatalf("diffLengths must include %d", n)
		}
	}
}

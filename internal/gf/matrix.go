package gf

import (
	"errors"
	"fmt"
)

// Matrix is a dense matrix over GF(2^8), stored row-major. Rows may be
// manipulated individually; all arithmetic helpers treat entries as
// field elements.
type Matrix struct {
	Rows int
	Cols int
	data []byte
}

// ErrSingular is returned when a matrix that must be invertible is not.
var ErrSingular = errors.New("gf: matrix is singular")

// NewMatrix returns a zero matrix with the given dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]byte, rows*cols)}
}

// IdentityMatrix returns the n-by-n identity matrix.
func IdentityMatrix(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// VandermondeMatrix returns the rows-by-cols matrix with entry
// (r, c) = r^c, using distinct field elements 0..rows-1 as evaluation
// points. Every square submatrix formed by choosing any `cols` rows is
// invertible, which is the MDS property Reed-Solomon relies on.
func VandermondeMatrix(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Pow(byte(r), c))
		}
	}
	return m
}

// At returns the entry at row r, column c.
func (m *Matrix) At(r, c int) byte { return m.data[r*m.Cols+c] }

// Set assigns the entry at row r, column c.
func (m *Matrix) Set(r, c int, v byte) { m.data[r*m.Cols+c] = v }

// Row returns a view of row r. Mutating the returned slice mutates the
// matrix.
func (m *Matrix) Row(r int) []byte { return m.data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.data, m.data)
	return c
}

// Mul returns the matrix product m*other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gf: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < other.Cols; c++ {
			var acc byte
			for k := 0; k < m.Cols; k++ {
				acc ^= Mul(m.At(r, k), other.At(k, c))
			}
			out.Set(r, c, acc)
		}
	}
	return out
}

// SubMatrix returns the matrix formed by the given rows, in order.
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Invert returns the inverse of a square matrix, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("gf: cannot invert %dx%d matrix", m.Rows, m.Cols))
	}
	n := m.Rows
	work := m.Clone()
	inv := IdentityMatrix(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			work.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		// Scale the pivot row so the pivot entry is 1.
		if p := work.At(col, col); p != 1 {
			pi := Inv(p)
			scaleRow(work.Row(col), pi)
			scaleRow(inv.Row(col), pi)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			MulAddSlice(f, work.Row(r), work.Row(col))
			MulAddSlice(f, inv.Row(r), inv.Row(col))
		}
	}
	return inv, nil
}

// MulVec computes the matrix-vector product over blocks: given one
// input block per matrix column, it produces one output block per
// matrix row, out[r] = sum_c m[r][c] * in[c]. All blocks must share a
// length; out rows are fully overwritten.
func (m *Matrix) MulVec(out, in [][]byte) {
	if len(in) != m.Cols || len(out) != m.Rows {
		panic("gf: MulVec shape mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		clear(out[r])
		for c := 0; c < m.Cols; c++ {
			MulAddSlice(m.At(r, c), out[r], in[c])
		}
	}
}

func (m *Matrix) swapRows(a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(row []byte, c byte) { MulSlice(c, row, row) }

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for r := 0; r < m.Rows; r++ {
		s += fmt.Sprintf("%v\n", m.Row(r))
	}
	return s
}

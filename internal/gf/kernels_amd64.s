//go:build amd64 && !gfpure

#include "textflag.h"

// Nibble-split GF(2^8) kernels.
//
// Each coefficient c has a 32-byte table pair: bytes 0..15 hold
// c*n for n in 0..15, bytes 16..31 hold c*(n<<4). A product is then
//     c*x = lo[x & 0x0f] ^ hi[x >> 4]
// and PSHUFB/VPSHUFB perform 16/32 of those 4-bit lookups at once.
//
// All kernels require n > 0 and n a multiple of the vector width;
// the Go wrappers guarantee this and handle tails.

DATA nibbleMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $16

// func gfMulSSSE3(tab *byte, dst, src *byte, n int)
// dst[i] = c*src[i] over n bytes, 16 per iteration. dst may equal src.
TEXT ·gfMulSSSE3(SB), NOSPLIT, $0-32
	MOVQ  tab+0(FP), AX
	MOVQ  dst+8(FP), DI
	MOVQ  src+16(FP), SI
	MOVQ  n+24(FP), CX
	MOVOU (AX), X0              // lo-nibble products
	MOVOU 16(AX), X1            // hi-nibble products
	MOVOU nibbleMask<>(SB), X2

mul16:
	MOVOU  (SI), X3             // x
	MOVOU  X3, X4
	PSRLW  $4, X4               // per-word shift; mask below drops strays
	PAND   X2, X3               // lo nibbles
	PAND   X2, X4               // hi nibbles
	MOVOU  X0, X5
	PSHUFB X3, X5               // lo[x & 0x0f]
	MOVOU  X1, X6
	PSHUFB X4, X6               // hi[x >> 4]
	PXOR   X6, X5
	MOVOU  X5, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNE    mul16
	RET

// func gfMulAVX2(tab *byte, dst, src *byte, n int)
// dst[i] = c*src[i] over n bytes, 32 per iteration. dst may equal src.
TEXT ·gfMulAVX2(SB), NOSPLIT, $0-32
	MOVQ           tab+0(FP), AX
	MOVQ           dst+8(FP), DI
	MOVQ           src+16(FP), SI
	MOVQ           n+24(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VBROADCASTI128 nibbleMask<>(SB), Y2

mul32:
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR   Y6, Y5, Y5
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     mul32
	VZEROUPPER
	RET

// func gfMulAddSSSE3(tab *byte, dst, src *byte, n int)
// dst[i] ^= c*src[i] over n bytes, 16 per iteration. Must not alias.
TEXT ·gfMulAddSSSE3(SB), NOSPLIT, $0-32
	MOVQ  tab+0(FP), AX
	MOVQ  dst+8(FP), DI
	MOVQ  src+16(FP), SI
	MOVQ  n+24(FP), CX
	MOVOU (AX), X0
	MOVOU 16(AX), X1
	MOVOU nibbleMask<>(SB), X2

muladd16:
	MOVOU  (SI), X3
	MOVOU  X3, X4
	PSRLW  $4, X4
	PAND   X2, X3
	PAND   X2, X4
	MOVOU  X0, X5
	PSHUFB X3, X5
	MOVOU  X1, X6
	PSHUFB X4, X6
	PXOR   X6, X5
	MOVOU  (DI), X7
	PXOR   X7, X5
	MOVOU  X5, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNE    muladd16
	RET

// func gfMulAddAVX2(tab *byte, dst, src *byte, n int)
// dst[i] ^= c*src[i] over n bytes, 32 per iteration. Must not alias.
TEXT ·gfMulAddAVX2(SB), NOSPLIT, $0-32
	MOVQ           tab+0(FP), AX
	MOVQ           dst+8(FP), DI
	MOVQ           src+16(FP), SI
	MOVQ           n+24(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VBROADCASTI128 nibbleMask<>(SB), Y2

muladd32:
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR   Y6, Y5, Y5
	VPXOR   (DI), Y5, Y5
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     muladd32
	VZEROUPPER
	RET

// func gfXorSSE2(dst, src *byte, n int)
// dst[i] ^= src[i] over n bytes, 16 per iteration.
TEXT ·gfXorSSE2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

xor16:
	MOVOU (SI), X0
	MOVOU (DI), X1
	PXOR  X0, X1
	MOVOU X1, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JNE   xor16
	RET

// func gfXorAVX2(dst, src *byte, n int)
// dst[i] ^= src[i] over n bytes, 32 per iteration.
TEXT ·gfXorAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

xor32:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     xor32
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

//go:build !gfdebug

package gf

// Release builds compile the aliasing checks away entirely; see
// alias_check.go for the gfdebug versions.

// DebugChecks reports whether the package was built with -tags gfdebug.
const DebugChecks = false

func checkMulAlias(dst, src []byte)           {}
func checkNoAlias(op string, dst, src []byte) {}

package gf

// Portable wide kernels. These work on packed uint64 words, 8 bytes
// per step, with nibble-split table lookups folded per byte. The word
// loads/stores are written as explicit shift-and-or so the package
// needs neither unsafe nor encoding/binary; the compiler's memcombine
// pass fuses each helper into a single 8-byte MOVQ on little-endian
// targets.
//
// They are the only kernels on non-amd64 targets and under the gfpure
// build tag; on amd64 they handle the tails the vector kernels leave
// behind.

// load64 reads 8 little-endian bytes from b.
func load64(b []byte) uint64 {
	_ = b[7] // one bounds check for all eight loads
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// store64 writes 8 little-endian bytes to b.
func store64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// mulWord returns the 8 field products c*b for the packed bytes of v,
// using the two 16-entry nibble tables for c.
func mulWord(tab *[32]byte, v uint64) uint64 {
	return uint64(tab[v&0x0f]^tab[16+(v>>4&0x0f)]) |
		uint64(tab[v>>8&0x0f]^tab[16+(v>>12&0x0f)])<<8 |
		uint64(tab[v>>16&0x0f]^tab[16+(v>>20&0x0f)])<<16 |
		uint64(tab[v>>24&0x0f]^tab[16+(v>>28&0x0f)])<<24 |
		uint64(tab[v>>32&0x0f]^tab[16+(v>>36&0x0f)])<<32 |
		uint64(tab[v>>40&0x0f]^tab[16+(v>>44&0x0f)])<<40 |
		uint64(tab[v>>48&0x0f]^tab[16+(v>>52&0x0f)])<<48 |
		uint64(tab[v>>56&0x0f]^tab[16+(v>>60&0x0f)])<<56
}

// mulSliceWord is the portable dst[i] = c*src[i] kernel. Callers
// guarantee equal lengths and c not in {0, 1}.
func mulSliceWord(c byte, dst, src []byte) {
	tab := &nibTable[c]
	for len(src) >= 8 {
		store64(dst, mulWord(tab, load64(src)))
		dst = dst[8:]
		src = src[8:]
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// mulAddSliceWord is the portable dst[i] ^= c*src[i] kernel. Callers
// guarantee equal lengths, no aliasing, and c not in {0, 1}.
func mulAddSliceWord(c byte, dst, src []byte) {
	tab := &nibTable[c]
	for len(src) >= 8 {
		store64(dst, load64(dst)^mulWord(tab, load64(src)))
		dst = dst[8:]
		src = src[8:]
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// addSliceWord is the portable dst[i] ^= src[i] kernel.
func addSliceWord(dst, src []byte) {
	for len(src) >= 8 {
		store64(dst, load64(dst)^load64(src))
		dst = dst[8:]
		src = src[8:]
	}
	for i, s := range src {
		dst[i] ^= s
	}
}

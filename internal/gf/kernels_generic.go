//go:build !amd64 || gfpure

package gf

// Non-amd64 targets (and amd64 under -tags gfpure) run the portable
// word kernels directly.

func mulSlice(c byte, dst, src []byte)    { mulSliceWord(c, dst, src) }
func mulAddSlice(c byte, dst, src []byte) { mulAddSliceWord(c, dst, src) }
func addSlice(dst, src []byte)            { addSliceWord(dst, src) }

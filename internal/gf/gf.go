// Package gf implements arithmetic over the finite field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the conventional choice for
// Reed-Solomon codes in storage systems. Addition and subtraction are
// both XOR; multiplication and division go through logarithm and
// exponential tables so that every scalar operation is a couple of
// table lookups.
//
// The package also provides slice kernels (MulSlice, MulAddSlice,
// AddSlice) that apply one coefficient across a whole block. These are
// the operations on the hot path of the erasure-coded storage protocol:
// a client computes Delta = alpha*(v-w) per redundant node, and a
// storage node folds deltas into its block with XOR.
//
// The slice kernels are tiered. On amd64 a nibble-split table kernel
// (two 16-entry lookup tables per coefficient, applied with PSHUFB /
// VPSHUFB) processes 16 or 32 bytes per step; everywhere else a
// portable kernel works on packed uint64 words, 8 bytes per step,
// using plain shift-and-or loads so the package stays free of unsafe
// and encoding/binary. The original byte-at-a-time loops live on as
// package gf/ref, the oracle for the differential tests; build with
// -tags gfpure to force the portable path on amd64, and -tags gfdebug
// to enable kernel precondition (aliasing) checks.
package gf

// Polynomial is the primitive polynomial used to construct the field,
// x^8 + x^4 + x^3 + x^2 + 1.
const Polynomial = 0x11D

// Order is the number of elements in the field.
const Order = 256

var (
	expTable [510]byte      // expTable[i] = g^i for i in [0, 509]; doubled to skip mod 255
	logTable [256]byte      // logTable[x] = log_g(x) for x != 0
	mulTable [256][256]byte // mulTable[a][b] = a*b
	invTable [256]byte      // invTable[x] = x^-1 for x != 0

	// nibTable[c] holds the two 16-entry nibble product tables for
	// coefficient c, back to back: entry n is c*n, entry 16+n is
	// c*(n<<4). Because multiplication distributes over XOR,
	// c*x = c*(x&0x0f) ^ c*(x&0xf0), so a full product is two 4-bit
	// lookups and one XOR. The 32-byte layout is exactly what the
	// amd64 shuffle kernels broadcast into vector registers.
	nibTable [256][32]byte
)

func init() {
	// Generate exp/log tables from the generator element 2.
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		expTable[i+255] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x >= Order {
			x ^= Polynomial
		}
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if a == 0 || b == 0 {
				mulTable[a][b] = 0
				continue
			}
			mulTable[a][b] = expTable[int(logTable[a])+int(logTable[b])]
		}
	}
	for a := 1; a < 256; a++ {
		invTable[a] = expTable[255-int(logTable[a])]
	}
	for c := 0; c < 256; c++ {
		for n := 0; n < 16; n++ {
			nibTable[c][n] = mulTable[c][n]
			nibTable[c][16+n] = mulTable[c][n<<4]
		}
	}
}

// Add returns a+b in GF(2^8). Addition is XOR.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8). Subtraction is identical to addition.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// Div returns a/b in GF(2^8). Division by zero panics, mirroring the
// behaviour of integer division: it is a programming error, not a
// runtime condition to handle.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return invTable[a]
}

// Exp returns g^e where g is the field generator (2).
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// Log returns log_g(a). Log(0) panics.
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^e in GF(2^8). Pow(0, 0) is 1 by convention.
func Pow(a byte, e int) byte {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	le := (int(logTable[a]) * e) % 255
	if le < 0 {
		le += 255
	}
	return expTable[le]
}

// MulRow returns the 256-entry lookup row for coefficient c, i.e.
// row[x] = c*x. Storage nodes use it to apply a coefficient to a whole
// block when the client broadcasts unmultiplied deltas.
func MulRow(c byte) *[256]byte { return &mulTable[c] }

// MulSlice sets dst[i] = c*src[i] for every i. dst and src must have
// the same length; they may alias exactly (same base pointer), but
// must not overlap partially.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	checkMulAlias(dst, src)
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		copy(dst, src)
		return
	}
	mulSlice(c, dst, src)
}

// MulAddSlice sets dst[i] ^= c*src[i] for every i, accumulating a
// scaled block into dst. dst and src must have the same length and must
// not alias (build with -tags gfdebug to enforce this at runtime).
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulAddSlice length mismatch")
	}
	checkNoAlias("MulAddSlice", dst, src)
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	mulAddSlice(c, dst, src)
}

// AddSlice sets dst[i] ^= src[i] for every i. This is both addition and
// subtraction in the field, applied blockwise. dst and src must have
// the same length; they may alias exactly, but must not overlap
// partially.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: AddSlice length mismatch")
	}
	checkMulAlias(dst, src)
	addSlice(dst, src)
}

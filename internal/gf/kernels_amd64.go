//go:build amd64 && !gfpure

package gf

// amd64 kernel dispatch. The assembly kernels in kernels_amd64.s apply
// the nibble-split tables with byte shuffles: PSHUFB (SSSE3) does 16
// parallel 4-bit lookups per instruction, VPSHUFB (AVX2) does 32. The
// wrappers here run the vector kernel over the aligned prefix and hand
// the tail (< one vector) to the portable word kernels.
//
// Kernel selection happens once at init via CPUID. SSSE3 (2006) is in
// practice universal on amd64, but the generic tier is kept reachable
// both for the gfpure build tag and so tests can force every tier.

const (
	kernelGeneric = iota // portable uint64 word kernels only
	kernelSSSE3          // 16 B/step PSHUFB
	kernelAVX2           // 32 B/step VPSHUFB
)

// kernelLevel is set once at init; tests may override it (serially) to
// exercise lower tiers on hardware that supports higher ones.
var kernelLevel = detectKernelLevel()

func detectKernelLevel() int {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return kernelGeneric
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		ssse3Bit   = 1 << 9
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	level := kernelGeneric
	if ecx1&ssse3Bit != 0 {
		level = kernelSSSE3
	}
	// AVX2 needs the CPU feature bit (leaf 7) plus OS support for
	// saving YMM state (OSXSAVE set and XCR0 bits 1|2 enabled).
	if ecx1&osxsaveBit != 0 && ecx1&avxBit != 0 && maxID >= 7 {
		if xcr0, _ := xgetbv0(); xcr0&0x6 == 0x6 {
			if _, ebx7, _, _ := cpuidex(7, 0); ebx7&(1<<5) != 0 {
				level = kernelAVX2
			}
		}
	}
	return level
}

// Assembly routines. n must be positive and a multiple of the kernel's
// vector width (16 for SSE/SSSE3, 32 for AVX2). tab points at the
// 32-byte nibble table pair for the coefficient. dst and src may alias
// exactly for the Mul kernels; the MulAdd kernels must not alias.

//go:noescape
func gfMulSSSE3(tab *byte, dst, src *byte, n int)

//go:noescape
func gfMulAVX2(tab *byte, dst, src *byte, n int)

//go:noescape
func gfMulAddSSSE3(tab *byte, dst, src *byte, n int)

//go:noescape
func gfMulAddAVX2(tab *byte, dst, src *byte, n int)

//go:noescape
func gfXorSSE2(dst, src *byte, n int)

//go:noescape
func gfXorAVX2(dst, src *byte, n int)

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

func mulSlice(c byte, dst, src []byte) {
	n := len(dst)
	if kernelLevel >= kernelAVX2 && n >= 32 {
		m := n &^ 31
		gfMulAVX2(&nibTable[c][0], &dst[0], &src[0], m)
		dst, src = dst[m:], src[m:]
	} else if kernelLevel >= kernelSSSE3 && n >= 16 {
		m := n &^ 15
		gfMulSSSE3(&nibTable[c][0], &dst[0], &src[0], m)
		dst, src = dst[m:], src[m:]
	}
	if len(dst) > 0 {
		mulSliceWord(c, dst, src)
	}
}

func mulAddSlice(c byte, dst, src []byte) {
	n := len(dst)
	if kernelLevel >= kernelAVX2 && n >= 32 {
		m := n &^ 31
		gfMulAddAVX2(&nibTable[c][0], &dst[0], &src[0], m)
		dst, src = dst[m:], src[m:]
	} else if kernelLevel >= kernelSSSE3 && n >= 16 {
		m := n &^ 15
		gfMulAddSSSE3(&nibTable[c][0], &dst[0], &src[0], m)
		dst, src = dst[m:], src[m:]
	}
	if len(dst) > 0 {
		mulAddSliceWord(c, dst, src)
	}
}

func addSlice(dst, src []byte) {
	n := len(dst)
	// SSE2 is baseline on amd64; the level gate only exists so tests
	// can force the portable tier.
	if kernelLevel >= kernelAVX2 && n >= 32 {
		m := n &^ 31
		gfXorAVX2(&dst[0], &src[0], m)
		dst, src = dst[m:], src[m:]
	} else if kernelLevel >= kernelSSSE3 && n >= 16 {
		m := n &^ 15
		gfXorSSE2(&dst[0], &src[0], m)
		dst, src = dst[m:], src[m:]
	}
	if len(dst) > 0 {
		addSliceWord(dst, src)
	}
}

package gf

import (
	"bytes"
	"testing"

	"ecstore/internal/gf/ref"
)

// Native fuzz targets for the wide kernels, differential against
// gf/ref. CI runs these for a short -fuzztime in the fuzz-smoke job;
// without -fuzz they replay the seed corpus as ordinary tests.

func FuzzMulSlice(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(1), []byte{7})
	f.Add(byte(0x8e), []byte("0123456789abcdefghijklmnopqrstuvwxyz"))
	f.Add(byte(0xff), bytes.Repeat([]byte{0xa5}, 65))
	f.Fuzz(func(t *testing.T, c byte, src []byte) {
		want := make([]byte, len(src))
		ref.MulSlice(c, want, src)

		got := make([]byte, len(src))
		MulSlice(c, got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulSlice c=%#x len=%d diverges from ref", c, len(src))
		}

		// Exact aliasing is allowed: scaling in place must agree too.
		inPlace := append([]byte(nil), src...)
		MulSlice(c, inPlace, inPlace)
		if !bytes.Equal(inPlace, want) {
			t.Fatalf("MulSlice c=%#x len=%d aliased diverges from ref", c, len(src))
		}
	})
}

func FuzzMulAddSlice(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(2), []byte("abcdefgh12345678ABCDEFGH"))
	f.Add(byte(0x1d), bytes.Repeat([]byte{0x3c}, 99))
	f.Fuzz(func(t *testing.T, c byte, data []byte) {
		// Halve the input into an accumulator and a source so the
		// fuzzer controls both operands.
		n := len(data) / 2
		src := data[:n]
		dstInit := data[n : 2*n]

		want := append([]byte(nil), dstInit...)
		ref.MulAddSlice(c, want, src)

		got := append([]byte(nil), dstInit...)
		MulAddSlice(c, got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulAddSlice c=%#x len=%d diverges from ref", c, n)
		}
	})
}

//go:build gfdebug

package gf

// Debug-build aliasing enforcement. MulAddSlice reads dst and src at
// different offsets within one vector step, so partially overlapping
// arguments silently corrupt the result in release builds; under
// -tags gfdebug every kernel entry point verifies its documented
// aliasing contract and panics on violation. Tests and the CI race job
// run with this tag on.

// DebugChecks reports whether the package was built with -tags gfdebug.
const DebugChecks = true

// checkMulAlias enforces the MulSlice/AddSlice contract: exact
// aliasing (same base pointer) is fine, partial overlap is not.
func checkMulAlias(dst, src []byte) {
	if len(dst) == 0 || len(src) == 0 {
		return
	}
	if &dst[0] == &src[0] {
		return
	}
	if sliceOverlap(dst, src) {
		panic("gf: dst and src overlap partially")
	}
}

// checkNoAlias enforces the MulAddSlice contract: no overlap at all.
func checkNoAlias(op string, dst, src []byte) {
	if len(dst) == 0 || len(src) == 0 {
		return
	}
	if sliceOverlap(dst, src) {
		panic("gf: " + op + ": dst and src alias")
	}
}

// sliceOverlap reports whether a and b share any element. Two slices
// can only overlap if they view the same backing array, in which case
// one's first element lies within the other — so an address-equality
// scan finds it without converting pointers to integers (no unsafe).
// O(len), which is why this only runs under gfdebug.
func sliceOverlap(a, b []byte) bool {
	for i := range a {
		if &a[i] == &b[0] {
			return true
		}
	}
	for i := range b {
		if &b[i] == &a[0] {
			return true
		}
	}
	return false
}

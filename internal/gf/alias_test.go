package gf

import "testing"

// Regression tests for the kernel aliasing contracts. The checks only
// exist under -tags gfdebug (release builds compile them away), so the
// panic assertions skip themselves in plain builds; CI runs this
// package with the tag on.

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", what)
		}
	}()
	fn()
}

func TestMulAddSliceOverlapPanicsUnderDebug(t *testing.T) {
	if !DebugChecks {
		t.Skip("aliasing enforcement requires -tags gfdebug")
	}
	buf := make([]byte, 64)

	// Any overlap at all violates the MulAddSlice contract, including
	// the exact-alias case MulSlice permits.
	mustPanic(t, "MulAddSlice partial overlap", func() {
		MulAddSlice(3, buf[:32], buf[16:48])
	})
	mustPanic(t, "MulAddSlice exact alias", func() {
		MulAddSlice(3, buf[:32], buf[:32])
	})
	// The c==1 shortcut routes through AddSlice, which allows exact
	// aliasing but not partial overlap.
	mustPanic(t, "MulAddSlice c=1 partial overlap", func() {
		MulAddSlice(1, buf[:32], buf[16:48])
	})
}

func TestMulSlicePartialOverlapPanicsUnderDebug(t *testing.T) {
	if !DebugChecks {
		t.Skip("aliasing enforcement requires -tags gfdebug")
	}
	buf := make([]byte, 64)
	mustPanic(t, "MulSlice partial overlap", func() {
		MulSlice(3, buf[:32], buf[16:48])
	})
	mustPanic(t, "AddSlice partial overlap", func() {
		AddSlice(buf[:32], buf[16:48])
	})
}

func TestExactAliasAllowedUnderDebug(t *testing.T) {
	// Exact aliasing must keep working in every build mode — the
	// erasure Delta path scales blocks in place.
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	MulSlice(7, buf, buf)
	AddSlice(buf, buf) // x ^ x = 0
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("buf[%d] = %d after self-XOR, want 0", i, v)
		}
	}
}

func TestDisjointHalvesOfOneArrayAllowed(t *testing.T) {
	// Slices of the same backing array that do not share elements are
	// legal for every kernel — this is exactly how callers split a
	// scratch buffer. The debug check must not flag it.
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	MulAddSlice(9, buf[:32], buf[32:])
	MulSlice(9, buf[:32], buf[32:])
	AddSlice(buf[:32], buf[32:])
}

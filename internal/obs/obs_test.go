package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; the
// final value must be exact (run under -race in CI).
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test.hits")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*per)
	}
}

// TestHistogramConcurrent checks that concurrent observations conserve
// count, sum, and per-bucket totals.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test.latency")
	durations := []time.Duration{
		500 * time.Nanosecond, // below the first bound
		time.Microsecond,
		17 * time.Microsecond,
		3 * time.Millisecond,
		2 * time.Second,
		time.Minute, // overflow bucket
	}
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(durations[(w+i)%len(durations)])
			}
		}(w)
	}
	wg.Wait()

	wantCount := uint64(workers * per)
	if h.Count() != wantCount {
		t.Fatalf("count %d, want %d", h.Count(), wantCount)
	}
	var wantSum time.Duration
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			wantSum += durations[(w+i)%len(durations)] // same multiset as observed
		}
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum %v, want %v", h.Sum(), wantSum)
	}
	snap := h.snapshot()
	var bucketTotal uint64
	for _, n := range snap.Buckets {
		bucketTotal += n
	}
	if bucketTotal != wantCount {
		t.Fatalf("buckets hold %d observations, want %d", bucketTotal, wantCount)
	}
	if snap.Buckets["+inf"] == 0 {
		t.Fatal("minute-long observation did not land in the overflow bucket")
	}
}

// TestHistogramQuantile sanity-checks the bucket-bound quantile
// estimate.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(defaultBounds)
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond) // first bucket
	}
	h.Observe(time.Second)
	if q := h.Quantile(0.5); q != time.Microsecond {
		t.Fatalf("p50 = %v, want 1us", q)
	}
	if q := h.Quantile(0.999); q < time.Second {
		t.Fatalf("p99.9 = %v, want >= 1s", q)
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}
}

// TestNilSafety exercises every operation through nil receivers — the
// disabled-metrics configuration must be a total no-op, not a panic.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z")
	reg.Func("f", func() int64 { return 1 })
	c.Inc()
	c.Add(10)
	g.Set(5)
	g.Add(-2)
	h.Observe(time.Second)
	sp := StartSpan(h)
	sp.End()
	sp = StartSpan(nil).Next(nil)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if len(reg.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if reg.String() != "{}" {
		t.Fatalf("nil registry String() = %q", reg.String())
	}
}

// TestGetOrCreate verifies registration is idempotent and that kind
// conflicts are programmer errors.
func TestGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup")
	b := reg.Counter("dup")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict must panic")
		}
	}()
	reg.Gauge("dup")
}

// TestFuncSum checks that several funcs under one name aggregate.
func TestFuncSum(t *testing.T) {
	reg := NewRegistry()
	reg.Func("agg", func() int64 { return 3 })
	reg.Func("agg", func() int64 { return 4 })
	if got := reg.Snapshot()["agg"]; got != int64(7) {
		t.Fatalf("func sum = %v, want 7", got)
	}
}

// TestSnapshotJSON round-trips a populated registry through its JSON
// export.
func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.calls").Add(3)
	reg.Gauge("a.depth").Set(-2)
	reg.Histogram("a.latency").Observe(5 * time.Microsecond)
	reg.Func("a.live", func() int64 { return 9 })

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if got["a.calls"].(float64) != 3 || got["a.depth"].(float64) != -2 || got["a.live"].(float64) != 9 {
		t.Fatalf("unexpected snapshot: %v", got)
	}
	hist, ok := got["a.latency"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Fatalf("histogram snapshot malformed: %v", got["a.latency"])
	}
}

// TestHandler serves the snapshot over HTTP the way cmd/storaged
// mounts it.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("h.calls").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["h.calls"].(float64) != 1 {
		t.Fatalf("endpoint returned %v", got)
	}
}

// TestSpanPhases verifies Next() records each phase exactly once.
func TestSpanPhases(t *testing.T) {
	reg := NewRegistry()
	p1, p2 := reg.Histogram("sp.p1"), reg.Histogram("sp.p2")
	sp := StartSpan(p1)
	sp = sp.Next(p2)
	sp.End()
	if p1.Count() != 1 || p2.Count() != 1 {
		t.Fatalf("phase counts %d/%d, want 1/1", p1.Count(), p2.Count())
	}
}

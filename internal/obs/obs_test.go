package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; the
// final value must be exact (run under -race in CI).
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test.hits")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*per)
	}
}

// TestHistogramConcurrent checks that concurrent observations conserve
// count, sum, and per-bucket totals.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test.latency")
	durations := []time.Duration{
		500 * time.Nanosecond, // below the first bound
		time.Microsecond,
		17 * time.Microsecond,
		3 * time.Millisecond,
		2 * time.Second,
		time.Minute, // overflow bucket
	}
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(durations[(w+i)%len(durations)])
			}
		}(w)
	}
	wg.Wait()

	wantCount := uint64(workers * per)
	if h.Count() != wantCount {
		t.Fatalf("count %d, want %d", h.Count(), wantCount)
	}
	var wantSum time.Duration
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			wantSum += durations[(w+i)%len(durations)] // same multiset as observed
		}
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum %v, want %v", h.Sum(), wantSum)
	}
	snap := h.snapshot()
	var bucketTotal uint64
	for _, n := range snap.Buckets {
		bucketTotal += n
	}
	if bucketTotal != wantCount {
		t.Fatalf("buckets hold %d observations, want %d", bucketTotal, wantCount)
	}
	if snap.Buckets["+inf"] == 0 {
		t.Fatal("minute-long observation did not land in the overflow bucket")
	}
}

// TestHistogramQuantile sanity-checks the interpolated quantile
// estimate: the answer must land inside the bucket holding the target
// rank, not snap to its upper bound.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(defaultBounds)
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond) // first bucket, (0, 1us]
	}
	h.Observe(time.Second)
	if q := h.Quantile(0.5); q <= 0 || q > time.Microsecond {
		t.Fatalf("p50 = %v, want inside (0, 1us]", q)
	}
	if q := h.Quantile(0.999); q < 512*time.Millisecond || q > time.Second {
		t.Fatalf("p99.9 = %v, want inside the 1s bucket", q)
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}
}

// TestHistogramQuantileInterpolation pins the interpolation formula on
// a single fully-populated bucket: the p-quantile of n identical
// observations in bucket (lo, hi] must sit at lo + p*(hi-lo).
func TestHistogramQuantileInterpolation(t *testing.T) {
	h := newHistogram(defaultBounds)
	// 100 observations in the (1us, 2us] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1500 * time.Nanosecond)
	}
	lo, hi := float64(time.Microsecond), float64(2*time.Microsecond)
	for _, p := range []float64{0.10, 0.50, 0.95, 0.99, 1.0} {
		want := time.Duration(lo + p*(hi-lo))
		if got := h.Quantile(p); got != want {
			t.Fatalf("Quantile(%.2f) = %v, want %v", p, got, want)
		}
	}
	if got := h.Quantile(0); got != time.Microsecond {
		t.Fatalf("Quantile(0) = %v, want the bucket's lower bound 1us", got)
	}
}

// TestHistogramQuantileMonotone checks ordering and range invariants
// over a spread of buckets: quantiles never decrease in p and always
// bracket the observed extremes' buckets.
func TestHistogramQuantileMonotone(t *testing.T) {
	h := newHistogram(defaultBounds)
	durations := []time.Duration{
		2 * time.Microsecond, 5 * time.Microsecond, 40 * time.Microsecond,
		300 * time.Microsecond, time.Millisecond, 7 * time.Millisecond,
		60 * time.Millisecond, 400 * time.Millisecond,
	}
	for i, d := range durations {
		for j := 0; j <= i; j++ { // skewed: later (slower) values are more common
			h.Observe(d)
		}
	}
	prev := time.Duration(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile(%.2f) = %v < Quantile(%.2f) = %v: not monotone", p, q, p-0.05, prev)
		}
		prev = q
	}
	if min := h.Quantile(0); min > 2*time.Microsecond {
		t.Fatalf("Quantile(0) = %v, want <= the smallest observation's bucket bound", min)
	}
	// 400ms lands in the (2^18us, 2^19us] = (262.144ms, 524.288ms] bucket.
	if max := h.Quantile(1); max <= 262144*time.Microsecond || max > 524288*time.Microsecond {
		t.Fatalf("Quantile(1) = %v, want inside the 400ms bucket (262.144ms, 524.288ms]", max)
	}
	// Out-of-range p clamps instead of panicking.
	if h.Quantile(-0.5) != h.Quantile(0) || h.Quantile(1.5) != h.Quantile(1) {
		t.Fatal("out-of-range quantiles must clamp to [0, 1]")
	}
}

// TestHistogramQuantileOverflow keeps the overflow bucket's behavior:
// with every observation past the largest finite bound, all quantiles
// report that largest bound rather than inventing an upper edge.
func TestHistogramQuantileOverflow(t *testing.T) {
	h := newHistogram(defaultBounds)
	for i := 0; i < 10; i++ {
		h.Observe(time.Minute)
	}
	want := time.Duration(defaultBounds[len(defaultBounds)-1])
	for _, p := range []float64{0.5, 0.99} {
		if got := h.Quantile(p); got != want {
			t.Fatalf("overflow Quantile(%.2f) = %v, want %v", p, got, want)
		}
	}
}

// TestNilSafety exercises every operation through nil receivers — the
// disabled-metrics configuration must be a total no-op, not a panic.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z")
	reg.Func("f", func() int64 { return 1 })
	c.Inc()
	c.Add(10)
	g.Set(5)
	g.Add(-2)
	h.Observe(time.Second)
	sp := StartSpan(h)
	sp.End()
	sp = StartSpan(nil).Next(nil)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if len(reg.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if reg.String() != "{}" {
		t.Fatalf("nil registry String() = %q", reg.String())
	}
}

// TestGetOrCreate verifies registration is idempotent and that kind
// conflicts are programmer errors.
func TestGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup")
	b := reg.Counter("dup")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict must panic")
		}
	}()
	reg.Gauge("dup")
}

// TestFuncSum checks that several funcs under one name aggregate.
func TestFuncSum(t *testing.T) {
	reg := NewRegistry()
	reg.Func("agg", func() int64 { return 3 })
	reg.Func("agg", func() int64 { return 4 })
	if got := reg.Snapshot()["agg"]; got != int64(7) {
		t.Fatalf("func sum = %v, want 7", got)
	}
}

// TestSnapshotJSON round-trips a populated registry through its JSON
// export.
func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.calls").Add(3)
	reg.Gauge("a.depth").Set(-2)
	reg.Histogram("a.latency").Observe(5 * time.Microsecond)
	reg.Func("a.live", func() int64 { return 9 })

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if got["a.calls"].(float64) != 3 || got["a.depth"].(float64) != -2 || got["a.live"].(float64) != 9 {
		t.Fatalf("unexpected snapshot: %v", got)
	}
	hist, ok := got["a.latency"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Fatalf("histogram snapshot malformed: %v", got["a.latency"])
	}
}

// TestHandler serves the snapshot over HTTP the way cmd/storaged
// mounts it.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("h.calls").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["h.calls"].(float64) != 1 {
		t.Fatalf("endpoint returned %v", got)
	}
}

// TestSpanPhases verifies Next() records each phase exactly once.
func TestSpanPhases(t *testing.T) {
	reg := NewRegistry()
	p1, p2 := reg.Histogram("sp.p1"), reg.Histogram("sp.p2")
	sp := StartSpan(p1)
	sp = sp.Next(p2)
	sp.End()
	if p1.Count() != 1 || p2.Count() != 1 {
		t.Fatalf("phase counts %d/%d, want 1/1", p1.Count(), p2.Count())
	}
}

package obs

import "time"

// Span times one step of a multi-step operation into a histogram. It
// is a value, not a pointer: starting a span against a nil histogram
// skips the clock read entirely, which is what keeps disabled metrics
// off the hot path.
//
//	sp := obs.StartSpan(m.lockLatency)   // phase 1
//	...
//	sp = sp.Next(m.stateLatency)         // record, start phase 2
//	...
//	sp.End()                             // record phase 2
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing into h. With a nil histogram the span is
// inert: no clock read, End is a no-op.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time into the span's histogram.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start))
}

// Next ends this span and starts a new one into next, sharing one
// clock read at the phase boundary.
func (s Span) Next(next *Histogram) Span {
	if s.h == nil && next == nil {
		return Span{}
	}
	now := time.Now()
	if s.h != nil {
		s.h.Observe(now.Sub(s.start))
	}
	if next == nil {
		return Span{}
	}
	return Span{h: next, start: now}
}

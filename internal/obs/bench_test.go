package obs

import (
	"testing"
	"time"
)

// The obs hot-path budget: a counter add and a histogram observe are
// the only costs instrumented code pays per event, and a nil metric
// must cost one branch. The end-to-end < 2% overhead claim on the
// 16 KiB write path lives in the repo root's BenchmarkObsOverhead.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench.hits")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench.hits")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.latency")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench.latency")
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(time.Duration(i) * time.Microsecond)
			i++
		}
	})
}

func BenchmarkSpanNil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := StartSpan(nil)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	h := NewRegistry().Histogram("bench.span")
	for i := 0; i < b.N; i++ {
		sp := StartSpan(h)
		sp.End()
	}
}

// Package obs is the zero-dependency observability substrate for the
// store: atomic counters, gauges, and fixed-bucket latency histograms,
// collected in a Registry that exports an expvar-compatible JSON
// snapshot. The hot path is lock-free (a few atomic adds), and the
// whole layer degrades to a no-op when disabled: every metric type is
// safe to use through a nil pointer, and a nil *Registry hands out nil
// metrics, so instrumented code pays only an untaken branch.
//
// Naming convention: dotted lowercase paths, subsystem first —
// "rpc.swap.calls", "core.write_latency", "blockstore.dirty_blocks".
// Registration is get-or-create: asking twice for the same name yields
// the same instance, so several clients sharing a registry aggregate
// into one set of series. Func gauges registered under one name are
// summed at snapshot time for the same reason.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// --- Counter -----------------------------------------------------------------

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil *Counter ignores updates.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- Gauge -------------------------------------------------------------------

// Gauge is an instantaneous signed value (queue depth, open conns).
// The zero value is ready to use; a nil *Gauge ignores updates.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// --- Histogram ---------------------------------------------------------------

// defaultBounds are exponential latency buckets from 1 microsecond to
// ~8.6 seconds (doubling), in nanoseconds. Anything slower lands in
// the overflow bucket. The range covers everything from an in-process
// add (~1 us) to a wedged recovery poll loop.
var defaultBounds = func() []int64 {
	bounds := make([]int64, 24)
	b := int64(time.Microsecond)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}()

// Histogram counts duration observations into fixed exponential
// buckets. Observations are lock-free: one binary search plus three
// atomic adds. A nil *Histogram ignores observations.
type Histogram struct {
	bounds  []int64 // ascending upper bounds, ns
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // total ns
}

func newHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time (0 for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the exponential bucket holding the q-th observation: the
// bucket's rank fraction positions the estimate between its lower and
// upper bounds, so p50/p95/p99 are usable programmatically instead of
// snapping to a power-of-two bucket edge. The overflow bucket has no
// upper bound and reports the largest finite bound. Quantiles of a
// clamped q (<0 or >1) use the nearest valid value.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(seen+n) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: unbounded above, report the largest
				// finite bound as before.
				return time.Duration(h.bounds[len(h.bounds)-1])
			}
			var lo int64
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			// Fraction of this bucket's observations below the target
			// rank; rank falls in (seen, seen+n].
			frac := (rank - float64(seen)) / float64(n)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		seen += n
	}
	return time.Duration(h.bounds[len(h.bounds)-1])
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	SumNs int64  `json:"sum_ns"`
	AvgNs int64  `json:"avg_ns"`
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
	// Buckets maps each bucket's upper bound (formatted duration, or
	// "+inf" for the overflow bucket) to its observation count. Empty
	// buckets are omitted.
	Buckets map[string]uint64 `json:"buckets"`
}

func (h *Histogram) snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		Count:   h.count.Load(),
		SumNs:   h.sum.Load(),
		Buckets: make(map[string]uint64),
	}
	if s.Count > 0 {
		s.AvgNs = s.SumNs / int64(s.Count)
		s.P50Ns = int64(h.Quantile(0.50))
		s.P99Ns = int64(h.Quantile(0.99))
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		label := "+inf"
		if i < len(h.bounds) {
			label = time.Duration(h.bounds[i]).String()
		}
		s.Buckets[label] = n
	}
	return s
}

// --- Registry ----------------------------------------------------------------

type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
	kindFunc
)

type entry struct {
	kind  metricKind
	ctr   *Counter
	gauge *Gauge
	hist  *Histogram
	funcs []func() int64 // summed at snapshot time
}

// Registry holds named metrics. A nil *Registry is the no-op sink: it
// hands out nil metrics and empty snapshots.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) get(name string, kind metricKind) *entry {
	e, ok := r.entries[name]
	if !ok {
		e = &entry{kind: kind}
		switch kind {
		case kindCounter:
			e.ctr = &Counter{}
		case kindGauge:
			e.gauge = &Gauge{}
		case kindHistogram:
			e.hist = newHistogram(defaultBounds)
		}
		r.entries[name] = e
		return e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	return e
}

// Counter returns the counter registered under name, creating it if
// needed. Repeated calls return the same instance.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(name, kindCounter).ctr
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(name, kindGauge).gauge
}

// Histogram returns the latency histogram registered under name
// (default exponential buckets, 1 us .. ~8.6 s), creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(name, kindHistogram).hist
}

// Func registers a gauge computed on demand. Several funcs registered
// under one name are summed at snapshot time, so per-instance sources
// (one per client, one per NIC) aggregate naturally.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, kindFunc)
	e.funcs = append(e.funcs, fn)
}

// Snapshot returns the current value of every metric, JSON-marshalable:
// counters as uint64, gauges and func gauges as int64, histograms as
// *HistogramSnapshot. A nil registry returns an empty map.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	entries := make([]*entry, 0, len(r.entries))
	for name, e := range r.entries {
		names = append(names, name)
		entries = append(entries, e)
	}
	r.mu.Unlock()
	// Funcs run outside the registry lock: they may take their owner's
	// locks (blockstore cache, NIC ledger).
	for i, e := range entries {
		switch e.kind {
		case kindCounter:
			out[names[i]] = e.ctr.Value()
		case kindGauge:
			out[names[i]] = e.gauge.Value()
		case kindHistogram:
			out[names[i]] = e.hist.snapshot()
		case kindFunc:
			var sum int64
			for _, fn := range e.funcs {
				sum += fn()
			}
			out[names[i]] = sum
		}
	}
	return out
}

// WriteJSON writes the snapshot as one JSON object with sorted keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the snapshot as JSON, which makes a Registry usable as
// an expvar.Var (expvar.Publish("ecstore", reg)).
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Handler returns an http.Handler serving the JSON snapshot — mount it
// at /debug/metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// Package wire defines the binary encoding of every AJX protocol
// message. The same codec serves the TCP RPC transport and the
// byte-accounting used by the shaped transport and the experiment
// harness (message sizes feed the bandwidth model).
//
// Encoding is big-endian and deliberately simple:
//
//	u8/u32/u64   fixed-width integers
//	bool         one byte, 0 or 1
//	bytes        u32 length prefix + raw bytes
//	TID          seq u64 + block u32 + client u32
//	[]TIDTime    u32 count + entries (TID + time u64)
//	[]int32      u32 count + values
//
// Every message is framed as: u32 total length, u8 message type, u64
// request id, u32 deadline budget in microseconds (0 = none), payload.
// The deadline rides every request frame so a storage node can shed
// work whose caller has already given up; replies carry 0.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ecstore/internal/bufpool"
	"ecstore/internal/proto"
)

// MsgType identifies a message on the wire.
type MsgType uint8

// Message types. Requests and replies are distinct types so a frame is
// self-describing.
const (
	TRead MsgType = iota + 1
	TReadReply
	TSwap
	TSwapReply
	TAdd
	TAddReply
	TCheckTID
	TCheckTIDReply
	TTryLock
	TTryLockReply
	TSetLock
	TSetLockReply
	TGetState
	TGetStateReply
	TGetRecent
	TGetRecentReply
	TReconstruct
	TReconstructReply
	TFinalize
	TFinalizeReply
	TGCOld
	TGCRecent
	TGCReply
	TProbe
	TProbeReply
	TError // reply carrying an error: u8 ErrCode, then message text
	TBatchAdd
	TBatchAddReply
	TBatchAddMulti
	TBatchAddMultiReply
	TPartialSum
	TPartialSumReply
)

// ErrTruncated reports a frame shorter than its contents require.
var ErrTruncated = errors.New("wire: truncated message")

// ErrBadType reports an unknown message type byte.
var ErrBadType = errors.New("wire: unknown message type")

// FrameOverhead is the per-message framing cost in bytes: u32 length,
// u8 type, u64 request id, u32 deadline budget (microseconds).
const FrameOverhead = 4 + 1 + 8 + 4

const tidSize = 16

// --- encoder --------------------------------------------------------------

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) tid(t proto.TID) {
	e.u64(t.Seq)
	e.u32(t.Block)
	e.u32(uint32(t.Client))
}
func (e *encoder) tidTimes(list []proto.TIDTime) {
	e.u32(uint32(len(list)))
	for _, item := range list {
		e.tid(item.TID)
		e.u64(item.Time)
	}
}
func (e *encoder) i32s(list []int32) {
	e.u32(uint32(len(list)))
	for _, v := range list {
		e.u32(uint32(v))
	}
}
func (e *encoder) batchAddReq(m *proto.BatchAddReq) {
	e.u64(m.Stripe)
	e.u32(uint32(m.Slot))
	e.bytes(m.Delta)
	e.u32(uint32(len(m.Entries)))
	for _, entry := range m.Entries {
		e.u32(uint32(entry.DataSlot))
		e.tid(entry.NTID)
		e.tid(entry.OTID)
	}
	e.u64(m.Epoch)
}
func (e *encoder) batchAddReply(m *proto.BatchAddReply) {
	e.u8(uint8(m.Status))
	e.u8(uint8(m.OpMode))
	e.u8(uint8(m.LockMode))
	e.i32s(m.Blockers)
}

// --- decoder --------------------------------------------------------------

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = ErrTruncated
		return false
	}
	return true
}
func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}
func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}
func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}
func (d *decoder) boolean() bool { return d.u8() != 0 }
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n == 0 {
		return nil
	}
	if !d.need(n) {
		return nil
	}
	// Block-sized payload fields dominate decode allocation; draw them
	// from the buffer pool. The decoded message owns the buffer — see
	// Recycle for the one place that returns request payloads.
	out := bufpool.Get(n)
	copy(out, d.buf[d.off:])
	d.off += n
	return out
}
func (d *decoder) tid() proto.TID {
	return proto.TID{Seq: d.u64(), Block: d.u32(), Client: proto.ClientID(d.u32())}
}
func (d *decoder) tidTimes() []proto.TIDTime {
	n := int(d.u32())
	if d.err != nil || n == 0 {
		return nil
	}
	if n > len(d.buf) { // defensive bound against corrupt counts
		d.err = ErrTruncated
		return nil
	}
	out := make([]proto.TIDTime, 0, n)
	for i := 0; i < n; i++ {
		t := d.tid()
		tm := d.u64()
		if d.err != nil {
			return nil
		}
		out = append(out, proto.TIDTime{TID: t, Time: tm})
	}
	return out
}
func (d *decoder) i32s() []int32 {
	n := int(d.u32())
	if d.err != nil || n == 0 {
		return nil
	}
	if n > len(d.buf) {
		d.err = ErrTruncated
		return nil
	}
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, int32(d.u32()))
	}
	if d.err != nil {
		return nil
	}
	return out
}

// --- message encode/decode -------------------------------------------------

// Encode serializes a protocol message body (no framing) and returns
// its type tag. It supports every request and reply in package proto.
func Encode(msg any) (MsgType, []byte, error) {
	return EncodeAppend(msg, nil)
}

// EncodeAppend is Encode into caller-provided storage: the body is
// appended to buf (usually buf[:0] of a pooled buffer sized with
// Size), growing it only if the capacity is short.
func EncodeAppend(msg any, buf []byte) (MsgType, []byte, error) {
	e := &encoder{buf: buf}
	switch m := msg.(type) {
	case *proto.ReadReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		return TRead, e.buf, nil
	case *proto.ReadReply:
		e.boolean(m.OK)
		e.bytes(m.Block)
		e.u8(uint8(m.LockMode))
		e.tid(m.TID)
		return TReadReply, e.buf, nil
	case *proto.SwapReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.bytes(m.Value)
		e.tid(m.NTID)
		return TSwap, e.buf, nil
	case *proto.SwapReply:
		e.boolean(m.OK)
		e.bytes(m.Block)
		e.u64(m.Epoch)
		e.tid(m.OTID)
		e.u8(uint8(m.LockMode))
		return TSwapReply, e.buf, nil
	case *proto.AddReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.bytes(m.Delta)
		e.u32(uint32(m.DataSlot))
		e.boolean(m.Premultiplied)
		e.tid(m.NTID)
		e.tid(m.OTID)
		e.u64(m.Epoch)
		return TAdd, e.buf, nil
	case *proto.AddReply:
		e.u8(uint8(m.Status))
		e.u8(uint8(m.OpMode))
		e.u8(uint8(m.LockMode))
		return TAddReply, e.buf, nil
	case *proto.BatchAddReq:
		e.batchAddReq(m)
		return TBatchAdd, e.buf, nil
	case *proto.BatchAddReply:
		e.batchAddReply(m)
		return TBatchAddReply, e.buf, nil
	case *proto.BatchAddMultiReq:
		e.u32(uint32(len(m.Adds)))
		for _, sub := range m.Adds {
			e.batchAddReq(sub)
		}
		return TBatchAddMulti, e.buf, nil
	case *proto.BatchAddMultiReply:
		e.u32(uint32(len(m.Replies)))
		for _, sub := range m.Replies {
			e.batchAddReply(sub)
		}
		return TBatchAddMultiReply, e.buf, nil
	case *proto.CheckTIDReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.tid(m.NTID)
		e.tid(m.OTID)
		return TCheckTID, e.buf, nil
	case *proto.CheckTIDReply:
		e.u8(uint8(m.Status))
		return TCheckTIDReply, e.buf, nil
	case *proto.TryLockReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.u8(uint8(m.Mode))
		e.u32(uint32(m.Caller))
		return TTryLock, e.buf, nil
	case *proto.TryLockReply:
		e.boolean(m.OK)
		e.u8(uint8(m.OldMode))
		return TTryLockReply, e.buf, nil
	case *proto.SetLockReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.u8(uint8(m.Mode))
		e.u32(uint32(m.Caller))
		return TSetLock, e.buf, nil
	case *proto.SetLockReply:
		return TSetLockReply, e.buf, nil
	case *proto.GetStateReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.boolean(m.NoBlock)
		return TGetState, e.buf, nil
	case *proto.GetStateReply:
		e.u8(uint8(m.OpMode))
		e.u8(uint8(m.LockMode))
		e.u64(m.Epoch)
		e.i32s(m.ReconsSet)
		e.tidTimes(m.OldList)
		e.tidTimes(m.RecentList)
		e.bytes(m.Block)
		e.boolean(m.BlockValid)
		return TGetStateReply, e.buf, nil
	case *proto.GetRecentReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.u8(uint8(m.Mode))
		e.u32(uint32(m.Caller))
		return TGetRecent, e.buf, nil
	case *proto.GetRecentReply:
		e.tidTimes(m.RecentList)
		return TGetRecentReply, e.buf, nil
	case *proto.ReconstructReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.i32s(m.CSet)
		e.bytes(m.Block)
		e.boolean(m.InPlace)
		return TReconstruct, e.buf, nil
	case *proto.ReconstructReply:
		e.u64(m.Epoch)
		return TReconstructReply, e.buf, nil
	case *proto.FinalizeReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.u64(m.Epoch)
		return TFinalize, e.buf, nil
	case *proto.FinalizeReply:
		return TFinalizeReply, e.buf, nil
	case *proto.GCOldReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.u32(uint32(len(m.TIDs)))
		for _, t := range m.TIDs {
			e.tid(t)
		}
		return TGCOld, e.buf, nil
	case *proto.GCRecentReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.u32(uint32(len(m.TIDs)))
		for _, t := range m.TIDs {
			e.tid(t)
		}
		return TGCRecent, e.buf, nil
	case *proto.GCReply:
		e.u8(uint8(m.Status))
		return TGCReply, e.buf, nil
	case *proto.PartialSumReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.u8(m.Coef)
		e.bytes(m.Acc)
		return TPartialSum, e.buf, nil
	case *proto.PartialSumReply:
		e.boolean(m.OK)
		e.bytes(m.Sum)
		e.u8(uint8(m.OpMode))
		e.u8(uint8(m.LockMode))
		return TPartialSumReply, e.buf, nil
	case *proto.ProbeReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		return TProbe, e.buf, nil
	case *proto.ProbeReply:
		e.u8(uint8(m.OpMode))
		e.u8(uint8(m.LockMode))
		e.u32(uint32(m.RecentCount))
		e.u64(m.OldestAge)
		e.boolean(m.HasRecent)
		e.u64(m.Epoch)
		return TProbeReply, e.buf, nil
	default:
		return 0, nil, fmt.Errorf("wire: cannot encode %T", msg)
	}
}

// Decode parses a message body of the given type.
func Decode(t MsgType, buf []byte) (any, error) {
	d := &decoder{buf: buf}
	var msg any
	switch t {
	case TRead:
		msg = &proto.ReadReq{Stripe: d.u64(), Slot: int32(d.u32())}
	case TReadReply:
		msg = &proto.ReadReply{OK: d.boolean(), Block: d.bytes(), LockMode: proto.LockMode(d.u8()), TID: d.tid()}
	case TSwap:
		msg = &proto.SwapReq{Stripe: d.u64(), Slot: int32(d.u32()), Value: d.bytes(), NTID: d.tid()}
	case TSwapReply:
		msg = &proto.SwapReply{OK: d.boolean(), Block: d.bytes(), Epoch: d.u64(), OTID: d.tid(), LockMode: proto.LockMode(d.u8())}
	case TAdd:
		msg = &proto.AddReq{
			Stripe: d.u64(), Slot: int32(d.u32()), Delta: d.bytes(),
			DataSlot: int32(d.u32()), Premultiplied: d.boolean(),
			NTID: d.tid(), OTID: d.tid(), Epoch: d.u64(),
		}
	case TAddReply:
		msg = &proto.AddReply{Status: proto.Status(d.u8()), OpMode: proto.OpMode(d.u8()), LockMode: proto.LockMode(d.u8())}
	case TBatchAdd:
		msg = d.batchAddReq()
	case TBatchAddReply:
		msg = d.batchAddReply()
	case TBatchAddMulti:
		req := &proto.BatchAddMultiReq{}
		cnt := int(d.u32())
		if d.err == nil && cnt > 0 {
			if cnt > len(d.buf) {
				d.err = ErrTruncated
			} else {
				req.Adds = make([]*proto.BatchAddReq, 0, cnt)
				for i := 0; i < cnt; i++ {
					req.Adds = append(req.Adds, d.batchAddReq())
					if d.err != nil {
						req.Adds = nil
						break
					}
				}
			}
		}
		msg = req
	case TBatchAddMultiReply:
		rep := &proto.BatchAddMultiReply{}
		cnt := int(d.u32())
		if d.err == nil && cnt > 0 {
			if cnt > len(d.buf) {
				d.err = ErrTruncated
			} else {
				rep.Replies = make([]*proto.BatchAddReply, 0, cnt)
				for i := 0; i < cnt; i++ {
					rep.Replies = append(rep.Replies, d.batchAddReply())
					if d.err != nil {
						rep.Replies = nil
						break
					}
				}
			}
		}
		msg = rep
	case TCheckTID:
		msg = &proto.CheckTIDReq{Stripe: d.u64(), Slot: int32(d.u32()), NTID: d.tid(), OTID: d.tid()}
	case TCheckTIDReply:
		msg = &proto.CheckTIDReply{Status: proto.Status(d.u8())}
	case TTryLock:
		msg = &proto.TryLockReq{Stripe: d.u64(), Slot: int32(d.u32()), Mode: proto.LockMode(d.u8()), Caller: proto.ClientID(d.u32())}
	case TTryLockReply:
		msg = &proto.TryLockReply{OK: d.boolean(), OldMode: proto.LockMode(d.u8())}
	case TSetLock:
		msg = &proto.SetLockReq{Stripe: d.u64(), Slot: int32(d.u32()), Mode: proto.LockMode(d.u8()), Caller: proto.ClientID(d.u32())}
	case TSetLockReply:
		msg = &proto.SetLockReply{}
	case TGetState:
		msg = &proto.GetStateReq{Stripe: d.u64(), Slot: int32(d.u32()), NoBlock: d.boolean()}
	case TGetStateReply:
		msg = &proto.GetStateReply{
			OpMode: proto.OpMode(d.u8()), LockMode: proto.LockMode(d.u8()), Epoch: d.u64(),
			ReconsSet: d.i32s(), OldList: d.tidTimes(), RecentList: d.tidTimes(),
			Block: d.bytes(), BlockValid: d.boolean(),
		}
	case TGetRecent:
		msg = &proto.GetRecentReq{Stripe: d.u64(), Slot: int32(d.u32()), Mode: proto.LockMode(d.u8()), Caller: proto.ClientID(d.u32())}
	case TGetRecentReply:
		msg = &proto.GetRecentReply{RecentList: d.tidTimes()}
	case TReconstruct:
		msg = &proto.ReconstructReq{Stripe: d.u64(), Slot: int32(d.u32()), CSet: d.i32s(), Block: d.bytes(), InPlace: d.boolean()}
	case TReconstructReply:
		msg = &proto.ReconstructReply{Epoch: d.u64()}
	case TFinalize:
		msg = &proto.FinalizeReq{Stripe: d.u64(), Slot: int32(d.u32()), Epoch: d.u64()}
	case TFinalizeReply:
		msg = &proto.FinalizeReply{}
	case TGCOld:
		req := &proto.GCOldReq{Stripe: d.u64(), Slot: int32(d.u32())}
		req.TIDs = d.tids()
		msg = req
	case TGCRecent:
		req := &proto.GCRecentReq{Stripe: d.u64(), Slot: int32(d.u32())}
		req.TIDs = d.tids()
		msg = req
	case TGCReply:
		msg = &proto.GCReply{Status: proto.Status(d.u8())}
	case TPartialSum:
		msg = &proto.PartialSumReq{Stripe: d.u64(), Slot: int32(d.u32()), Coef: d.u8(), Acc: d.bytes()}
	case TPartialSumReply:
		msg = &proto.PartialSumReply{OK: d.boolean(), Sum: d.bytes(), OpMode: proto.OpMode(d.u8()), LockMode: proto.LockMode(d.u8())}
	case TProbe:
		msg = &proto.ProbeReq{Stripe: d.u64(), Slot: int32(d.u32())}
	case TProbeReply:
		msg = &proto.ProbeReply{
			OpMode: proto.OpMode(d.u8()), LockMode: proto.LockMode(d.u8()),
			RecentCount: int32(d.u32()), OldestAge: d.u64(), HasRecent: d.boolean(), Epoch: d.u64(),
		}
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %d message", len(buf)-d.off, t)
	}
	return msg, nil
}

func (d *decoder) batchAddReq() *proto.BatchAddReq {
	req := &proto.BatchAddReq{Stripe: d.u64(), Slot: int32(d.u32()), Delta: d.bytes()}
	cnt := int(d.u32())
	if d.err == nil && cnt > 0 {
		if cnt > len(d.buf) {
			d.err = ErrTruncated
		} else {
			req.Entries = make([]proto.BatchEntry, 0, cnt)
			for i := 0; i < cnt; i++ {
				req.Entries = append(req.Entries, proto.BatchEntry{
					DataSlot: int32(d.u32()), NTID: d.tid(), OTID: d.tid(),
				})
			}
			if d.err != nil {
				req.Entries = nil
			}
		}
	}
	req.Epoch = d.u64()
	return req
}

func (d *decoder) batchAddReply() *proto.BatchAddReply {
	return &proto.BatchAddReply{
		Status: proto.Status(d.u8()), OpMode: proto.OpMode(d.u8()),
		LockMode: proto.LockMode(d.u8()), Blockers: d.i32s(),
	}
}

func (d *decoder) tids() []proto.TID {
	n := int(d.u32())
	if d.err != nil || n == 0 {
		return nil
	}
	if n > len(d.buf) {
		d.err = ErrTruncated
		return nil
	}
	out := make([]proto.TID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.tid())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Recycle returns the pooled payload buffer of a decoded *request* to
// the block pool and nils the field. The RPC server calls it once the
// handler has returned and the reply is on the wire; the storage node
// handlers fold or copy request payloads during the call and retain no
// reference (package storage documents this), so the buffer's lifetime
// is fully visible there.
//
// Replies are deliberately not recycled: reply payloads (read blocks,
// swap old-values) are returned to the caller of the RPC client and
// escape into application code.
func Recycle(msg any) {
	switch m := msg.(type) {
	case *proto.SwapReq:
		bufpool.Put(m.Value)
		m.Value = nil
	case *proto.AddReq:
		bufpool.Put(m.Delta)
		m.Delta = nil
	case *proto.BatchAddReq:
		bufpool.Put(m.Delta)
		m.Delta = nil
	case *proto.BatchAddMultiReq:
		for _, sub := range m.Adds {
			bufpool.Put(sub.Delta)
			sub.Delta = nil
		}
	case *proto.ReconstructReq:
		bufpool.Put(m.Block)
		m.Block = nil
	case *proto.PartialSumReq:
		bufpool.Put(m.Acc)
		m.Acc = nil
	}
}

// Size returns the on-wire size of a message including framing,
// without serializing it. The shaped transport and the experiment
// harness use it for bandwidth accounting on every call, so it must
// stay allocation-free.
func Size(msg any) int {
	body := 0
	switch m := msg.(type) {
	case *proto.ReadReq, *proto.ProbeReq:
		body = 12
	case *proto.GetStateReq:
		body = 13
	case *proto.ReadReply:
		body = 1 + 4 + len(m.Block) + 1 + tidSize
	case *proto.SwapReq:
		body = 12 + 4 + len(m.Value) + tidSize
	case *proto.SwapReply:
		body = 1 + 4 + len(m.Block) + 8 + tidSize + 1
	case *proto.AddReq:
		body = 12 + 4 + len(m.Delta) + 4 + 1 + 2*tidSize + 8
	case *proto.AddReply:
		body = 3
	case *proto.BatchAddReq:
		body = 12 + 4 + len(m.Delta) + 4 + len(m.Entries)*(4+2*tidSize) + 8
	case *proto.BatchAddReply:
		body = 3 + 4 + 4*len(m.Blockers)
	case *proto.BatchAddMultiReq:
		body = 4
		for _, sub := range m.Adds {
			body += 12 + 4 + len(sub.Delta) + 4 + len(sub.Entries)*(4+2*tidSize) + 8
		}
	case *proto.BatchAddMultiReply:
		body = 4
		for _, sub := range m.Replies {
			body += 3 + 4 + 4*len(sub.Blockers)
		}
	case *proto.CheckTIDReq:
		body = 12 + 2*tidSize
	case *proto.CheckTIDReply:
		body = 1
	case *proto.TryLockReq, *proto.SetLockReq, *proto.GetRecentReq:
		body = 12 + 1 + 4
	case *proto.TryLockReply:
		body = 2
	case *proto.SetLockReply, *proto.FinalizeReply:
		body = 0
	case *proto.GetStateReply:
		body = 2 + 8 + 4 + 4*len(m.ReconsSet) +
			4 + (tidSize+8)*len(m.OldList) +
			4 + (tidSize+8)*len(m.RecentList) +
			4 + len(m.Block) + 1
	case *proto.GetRecentReply:
		body = 4 + (tidSize+8)*len(m.RecentList)
	case *proto.ReconstructReq:
		body = 12 + 4 + 4*len(m.CSet) + 4 + len(m.Block) + 1
	case *proto.ReconstructReply:
		body = 8
	case *proto.FinalizeReq:
		body = 12 + 8
	case *proto.GCOldReq:
		body = 12 + 4 + tidSize*len(m.TIDs)
	case *proto.GCRecentReq:
		body = 12 + 4 + tidSize*len(m.TIDs)
	case *proto.GCReply:
		body = 1
	case *proto.PartialSumReq:
		body = 12 + 1 + 4 + len(m.Acc)
	case *proto.PartialSumReply:
		body = 1 + 4 + len(m.Sum) + 2
	case *proto.ProbeReply:
		body = 2 + 4 + 8 + 1 + 8
	default:
		return FrameOverhead // unknown: framing only
	}
	return FrameOverhead + body
}

package wire

import (
	"testing"

	"ecstore/internal/proto"
)

// The two encode paths at 1 MiB: EncodeFrame assembles a segment list
// referencing the payload (O(meta) work), EncodeAppend memcpys the
// payload into the frame buffer (O(payload) work). The gap between
// these two is the copy the vectored write path elides per call.
func BenchmarkEncodeFrame1MiB(b *testing.B) {
	var msg any = &proto.SwapReq{Stripe: 1, Slot: 0, Value: make([]byte, 1<<20), NTID: proto.TID{Seq: 1, Client: 3}}
	var f Frame
	meta := make([]byte, MetaSize(msg))
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeFrame(&f, msg, uint64(i), 0, meta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeAppend1MiB(b *testing.B) {
	var msg any = &proto.SwapReq{Stripe: 1, Slot: 0, Value: make([]byte, 1<<20), NTID: proto.TID{Seq: 1, Client: 3}}
	buf := make([]byte, 0, Size(msg))
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := EncodeAppend(msg, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

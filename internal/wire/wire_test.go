package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ecstore/internal/proto"
)

// sampleMessages returns one populated instance of every message type.
func sampleMessages() []any {
	t1 := proto.TID{Seq: 42, Block: 3, Client: 7}
	t2 := proto.TID{Seq: 43, Block: 1, Client: 9}
	tt := []proto.TIDTime{{TID: t1, Time: 100}, {TID: t2, Time: 200}}
	blk := []byte{1, 2, 3, 4, 5}
	return []any{
		&proto.ReadReq{Stripe: 9, Slot: 2},
		&proto.ReadReply{OK: true, Block: blk, LockMode: proto.L1},
		&proto.SwapReq{Stripe: 9, Slot: 2, Value: blk, NTID: t1},
		&proto.SwapReply{OK: true, Block: blk, Epoch: 5, OTID: t2, LockMode: proto.Unlocked},
		&proto.AddReq{Stripe: 9, Slot: 4, Delta: blk, DataSlot: 1, Premultiplied: true, NTID: t1, OTID: t2, Epoch: 3},
		&proto.AddReply{Status: proto.StatusOrder, OpMode: proto.Norm, LockMode: proto.L0},
		&proto.BatchAddReq{Stripe: 9, Slot: 4, Delta: blk, Epoch: 3,
			Entries: []proto.BatchEntry{{DataSlot: 0, NTID: t1, OTID: t2}, {DataSlot: 1, NTID: t2}}},
		&proto.BatchAddReply{Status: proto.StatusOrder, OpMode: proto.Norm, LockMode: proto.L0, Blockers: []int32{0, 1}},
		&proto.BatchAddMultiReq{Adds: []*proto.BatchAddReq{
			{Stripe: 9, Slot: 4, Delta: blk, Epoch: 3, Entries: []proto.BatchEntry{{DataSlot: 0, NTID: t1}}},
			{Stripe: 10, Slot: 4, Delta: []byte{9, 8}, Epoch: 4, Entries: []proto.BatchEntry{{DataSlot: 1, NTID: t2, OTID: t1}}},
		}},
		&proto.BatchAddMultiReply{Replies: []*proto.BatchAddReply{
			{Status: proto.StatusOK, OpMode: proto.Norm, LockMode: proto.Unlocked},
			{Status: proto.StatusOrder, Blockers: []int32{1}},
		}},
		&proto.CheckTIDReq{Stripe: 9, Slot: 4, NTID: t1, OTID: t2},
		&proto.CheckTIDReply{Status: proto.StatusGC},
		&proto.TryLockReq{Stripe: 9, Slot: 0, Mode: proto.L1, Caller: 3},
		&proto.TryLockReply{OK: true, OldMode: proto.Expired},
		&proto.SetLockReq{Stripe: 9, Slot: 0, Mode: proto.L0, Caller: 3},
		&proto.SetLockReply{},
		&proto.GetStateReq{Stripe: 9, Slot: 1, NoBlock: true},
		&proto.GetStateReply{
			OpMode: proto.Recons, LockMode: proto.L1, Epoch: 7,
			ReconsSet: []int32{0, 1, 3}, OldList: tt, RecentList: tt[:1],
			Block: blk, BlockValid: true,
		},
		&proto.GetRecentReq{Stripe: 9, Slot: 4, Mode: proto.L1, Caller: 3},
		&proto.GetRecentReply{RecentList: tt},
		&proto.ReconstructReq{Stripe: 9, Slot: 1, CSet: []int32{0, 2}, Block: blk},
		&proto.ReconstructReq{Stripe: 9, Slot: 1, CSet: []int32{0, 2}, InPlace: true},
		&proto.ReconstructReply{Epoch: 11},
		&proto.FinalizeReq{Stripe: 9, Slot: 1, Epoch: 12},
		&proto.FinalizeReply{},
		&proto.GCOldReq{Stripe: 9, Slot: 1, TIDs: []proto.TID{t1, t2}},
		&proto.GCRecentReq{Stripe: 9, Slot: 1, TIDs: []proto.TID{t1}},
		&proto.GCReply{Status: proto.StatusOK},
		&proto.ProbeReq{Stripe: 9, Slot: 1},
		&proto.ProbeReply{OpMode: proto.Norm, LockMode: proto.Unlocked, RecentCount: 4, OldestAge: 999, HasRecent: true, Epoch: 2},
		&proto.PartialSumReq{Stripe: 9, Slot: 1, Coef: 0x53, Acc: blk},
		&proto.PartialSumReply{OK: true, Sum: blk, OpMode: proto.Norm, LockMode: proto.L1},
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	for _, msg := range sampleMessages() {
		mt, buf, err := Encode(msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		got, err := Decode(mt, buf)
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if !reflect.DeepEqual(msg, got) {
			t.Errorf("%T: round trip mismatch:\n enc %+v\n dec %+v", msg, msg, got)
		}
	}
}

func TestSizeMatchesEncoding(t *testing.T) {
	for _, msg := range sampleMessages() {
		_, buf, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := Size(msg), len(buf)+FrameOverhead; got != want {
			t.Errorf("%T: Size = %d, want %d", msg, got, want)
		}
	}
}

func TestRoundTripEmptyFields(t *testing.T) {
	// nil slices and zero TIDs must survive the round trip as nil/zero.
	msgs := []any{
		&proto.ReadReply{},
		&proto.SwapReply{},
		&proto.GetStateReply{},
		&proto.GetRecentReply{},
		&proto.GCOldReq{},
		&proto.AddReq{},
	}
	for _, msg := range msgs {
		mt, buf, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(mt, buf)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		if !reflect.DeepEqual(msg, got) {
			t.Errorf("%T: empty round trip mismatch: %+v vs %+v", msg, msg, got)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, msg := range sampleMessages() {
		mt, buf, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) == 0 {
			continue
		}
		for _, cut := range []int{1, len(buf) / 2, len(buf) - 1} {
			if cut >= len(buf) {
				continue
			}
			if _, err := Decode(mt, buf[:cut]); err == nil {
				t.Errorf("%T: decode of %d/%d bytes succeeded", msg, cut, len(buf))
			}
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	mt, buf, _ := Encode(&proto.ReadReq{Stripe: 1, Slot: 0})
	if _, err := Decode(mt, append(buf, 0xFF)); err == nil {
		t.Fatal("decode with trailing bytes succeeded")
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := Decode(MsgType(200), nil); !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v, want ErrBadType", err)
	}
}

func TestEncodeUnknownType(t *testing.T) {
	if _, _, err := Encode(struct{}{}); err == nil {
		t.Fatal("encode of unknown type succeeded")
	}
}

func TestDecodeCorruptCountsDoNotPanic(t *testing.T) {
	// A hostile or corrupt frame with a huge element count must fail
	// cleanly rather than allocating or panicking.
	rng := rand.New(rand.NewSource(1))
	for _, mt := range []MsgType{TGetStateReply, TGetRecentReply, TGCOld, TGCRecent, TReconstruct, TBatchAdd, TBatchAddMulti, TBatchAddMultiReply} {
		for trial := 0; trial < 200; trial++ {
			n := rng.Intn(40)
			buf := make([]byte, n)
			rng.Read(buf)
			_, _ = Decode(mt, buf) // must not panic
		}
		// Explicit huge count.
		huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
		if _, err := Decode(mt, huge); err == nil {
			t.Errorf("type %d: decode of huge count succeeded", mt)
		}
	}
}

func TestFrameOverheadConstant(t *testing.T) {
	// 13-byte header + u32 deadline budget (microseconds).
	if FrameOverhead != 17 {
		t.Fatalf("FrameOverhead = %d; update the protocol docs if this changes", FrameOverhead)
	}
}

func TestErrorCodeRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		code ErrCode
	}{
		{fmt.Errorf("disk on fire"), CodeGeneric},
		{fmt.Errorf("wrapped: %w", proto.ErrDraining), CodeDraining},
		{fmt.Errorf("wrapped: %w", proto.ErrDeadlineExceeded), CodeDeadline},
		{fmt.Errorf("wrapped: %w", proto.ErrThrottled), CodeThrottled},
		{fmt.Errorf("wrapped: %w", proto.ErrOverloaded), CodeOverloaded},
	}
	for _, tc := range cases {
		payload := AppendError(nil, tc.err)
		if got := ErrCode(payload[0]); got != tc.code {
			t.Fatalf("CodeOf(%v) on wire = %d, want %d", tc.err, got, tc.code)
		}
		back := DecodeError(payload)
		if sentinel := SentinelFor(tc.code); sentinel != nil {
			if !errors.Is(back, sentinel) {
				t.Fatalf("decoded %v does not match sentinel for code %d", back, tc.code)
			}
		} else if errors.Is(back, proto.ErrDraining) || errors.Is(back, proto.ErrDeadlineExceeded) {
			t.Fatalf("generic error decoded as typed: %v", back)
		}
		if want := tc.err.Error(); !strings.Contains(back.Error(), want) {
			t.Fatalf("decoded message %q lost original text %q", back.Error(), want)
		}
	}
	// Unknown future codes degrade to generic text, never a parse failure.
	if err := DecodeError([]byte{0xEE, 'x'}); err == nil || errors.Is(err, proto.ErrDraining) {
		t.Fatalf("unknown code decoded unexpectedly: %v", err)
	}
	if code, msg := ParseError(nil); code != CodeGeneric || msg != "" {
		t.Fatalf("ParseError(nil) = %d %q", code, msg)
	}
}

package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ecstore/internal/proto"
)

// randTID, randTT and friends produce structured random messages for
// property-based round-trip checks (testing/quick drives the seeds).
func randTID(rng *rand.Rand) proto.TID {
	return proto.TID{Seq: rng.Uint64(), Block: rng.Uint32() % 64, Client: proto.ClientID(rng.Uint32() % 1024)}
}

func randTT(rng *rand.Rand, n int) []proto.TIDTime {
	if n == 0 {
		return nil
	}
	out := make([]proto.TIDTime, n)
	for i := range out {
		out[i] = proto.TIDTime{TID: randTID(rng), Time: rng.Uint64()}
	}
	return out
}

func randBytes(rng *rand.Rand, n int) []byte {
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestQuickRoundTripRandomMessages round-trips randomly populated
// instances of the structurally rich message types and checks both
// equality and the Size contract.
func TestQuickRoundTripRandomMessages(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(seed int64, kind uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var msg any
		switch kind % 6 {
		case 0:
			msg = &proto.SwapReq{
				Stripe: rng.Uint64(), Slot: int32(rng.Uint32() % 32),
				Value: randBytes(rng, rng.Intn(256)), NTID: randTID(rng),
			}
		case 1:
			msg = &proto.AddReq{
				Stripe: rng.Uint64(), Slot: int32(rng.Uint32() % 32),
				Delta: randBytes(rng, rng.Intn(256)), DataSlot: int32(rng.Uint32() % 16),
				Premultiplied: rng.Intn(2) == 0, NTID: randTID(rng), OTID: randTID(rng),
				Epoch: rng.Uint64(),
			}
		case 2:
			msg = &proto.GetStateReply{
				OpMode: proto.OpMode(rng.Intn(3) + 1), LockMode: proto.LockMode(rng.Intn(4) + 1),
				Epoch: rng.Uint64(),
				ReconsSet: func() []int32 {
					n := rng.Intn(8)
					if n == 0 {
						return nil
					}
					out := make([]int32, n)
					for i := range out {
						out[i] = int32(rng.Uint32() % 64)
					}
					return out
				}(),
				OldList:    randTT(rng, rng.Intn(6)),
				RecentList: randTT(rng, rng.Intn(6)),
				Block:      randBytes(rng, rng.Intn(256)),
				BlockValid: rng.Intn(2) == 0,
			}
		case 3:
			msg = &proto.GCOldReq{
				Stripe: rng.Uint64(), Slot: int32(rng.Uint32() % 32),
				TIDs: func() []proto.TID {
					n := rng.Intn(8)
					if n == 0 {
						return nil
					}
					out := make([]proto.TID, n)
					for i := range out {
						out[i] = randTID(rng)
					}
					return out
				}(),
			}
		case 4:
			msg = &proto.SwapReply{
				OK: rng.Intn(2) == 0, Block: randBytes(rng, rng.Intn(256)),
				Epoch: rng.Uint64(), OTID: randTID(rng), LockMode: proto.LockMode(rng.Intn(4) + 1),
			}
		default:
			msg = &proto.GetRecentReply{RecentList: randTT(rng, rng.Intn(10))}
		}
		mt, buf, err := Encode(msg)
		if err != nil {
			return false
		}
		if Size(msg) != len(buf)+FrameOverhead {
			return false
		}
		got, err := Decode(mt, buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(msg, got)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeGarbageNeverPanics throws random byte soup at every
// message type: Decode may error but must never panic or hang.
func TestQuickDecodeGarbageNeverPanics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	err := quick.Check(func(seed int64, typeRaw uint8, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		mt := MsgType(typeRaw%32 + 1)
		buf := randBytes(rng, int(size%512))
		_, _ = Decode(mt, buf)
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

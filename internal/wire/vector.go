// Vectored (zero-copy) frame encoding. EncodeFrame produces a Frame:
// an ordered segment list ready for a writev (net.Buffers) in which
// the frame header and every fixed-width field live in one small
// caller-provided meta buffer, while block payloads — SwapReq.Value,
// AddReq.Delta, BatchAdd(Multi) deltas, ReconstructReq.Block,
// PartialSumReq.Acc, and the block fields of Read/Swap/GetState/
// PartialSum replies — are referenced in place. A 1 MiB block crosses
// the write path without ever being copied into a frame buffer; the
// concatenation of the segments is byte-identical to the contiguous
// framing writeFrame+EncodeAppend would produce (FuzzVectoredFrameRoundTrip
// holds the two paths equal).
//
// Ownership rules:
//
//   - The meta buffer backs every non-payload segment. It must have
//     capacity MetaSize(msg) and must not be recycled or reused until
//     the writev referencing the Frame has returned.
//   - Payload segments alias the message's own buffers. The encoder
//     borrows them; it never copies, mutates, or recycles them. The
//     caller must keep them alive and unmodified until the writev
//     returns — after that, ownership reverts to the caller.
//   - Frame.Segs is scratch owned by the Frame; EncodeFrame resets and
//     refills it, so a long-lived Frame makes the encode allocation-free.
package wire

import (
	"encoding/binary"
	"fmt"

	"ecstore/internal/proto"
)

// Frame is the zero-copy view of one framed message: the segment list
// a writev sends, in wire order. Segment 0 always starts with the
// 17-byte frame header (FrameOverhead); payload-bearing messages
// alternate meta spans with payload segments, everything else is a
// single contiguous segment.
type Frame struct {
	// Type is the message's wire type tag (also encoded in the header).
	Type MsgType
	// Segs is the ordered segment list; its backing array is reused
	// across EncodeFrame calls on the same Frame.
	Segs [][]byte
	// Payload counts the bytes referenced in place (aliasing the
	// message), as opposed to encoded into the meta buffer.
	Payload int
	// Wire is the total framed size: the sum of all segment lengths,
	// equal to Size(msg).
	Wire int
}

// PayloadBytes returns the number of payload bytes EncodeFrame would
// reference in place (not copy) for msg: the block-sized fields of the
// payload-bearing requests and replies, 0 for everything else. Like
// Size it is allocation-free, so write paths can use it to pick
// between the vectored and the copying encoder per call.
func PayloadBytes(msg any) int {
	switch m := msg.(type) {
	case *proto.SwapReq:
		return len(m.Value)
	case *proto.AddReq:
		return len(m.Delta)
	case *proto.BatchAddReq:
		return len(m.Delta)
	case *proto.BatchAddMultiReq:
		total := 0
		for _, sub := range m.Adds {
			total += len(sub.Delta)
		}
		return total
	case *proto.ReconstructReq:
		return len(m.Block)
	case *proto.PartialSumReq:
		return len(m.Acc)
	case *proto.ReadReply:
		return len(m.Block)
	case *proto.SwapReply:
		return len(m.Block)
	case *proto.GetStateReply:
		return len(m.Block)
	case *proto.PartialSumReply:
		return len(m.Sum)
	}
	return 0
}

// MetaSize returns the exact meta-buffer capacity EncodeFrame needs
// for msg: the frame header plus every encoded byte that is not a
// referenced payload.
func MetaSize(msg any) int {
	return Size(msg) - PayloadBytes(msg)
}

// TypeOf returns the wire type tag a message encodes to without
// serializing it, and whether the message type is known.
func TypeOf(msg any) (MsgType, bool) {
	switch msg.(type) {
	case *proto.ReadReq:
		return TRead, true
	case *proto.ReadReply:
		return TReadReply, true
	case *proto.SwapReq:
		return TSwap, true
	case *proto.SwapReply:
		return TSwapReply, true
	case *proto.AddReq:
		return TAdd, true
	case *proto.AddReply:
		return TAddReply, true
	case *proto.BatchAddReq:
		return TBatchAdd, true
	case *proto.BatchAddReply:
		return TBatchAddReply, true
	case *proto.BatchAddMultiReq:
		return TBatchAddMulti, true
	case *proto.BatchAddMultiReply:
		return TBatchAddMultiReply, true
	case *proto.CheckTIDReq:
		return TCheckTID, true
	case *proto.CheckTIDReply:
		return TCheckTIDReply, true
	case *proto.TryLockReq:
		return TTryLock, true
	case *proto.TryLockReply:
		return TTryLockReply, true
	case *proto.SetLockReq:
		return TSetLock, true
	case *proto.SetLockReply:
		return TSetLockReply, true
	case *proto.GetStateReq:
		return TGetState, true
	case *proto.GetStateReply:
		return TGetStateReply, true
	case *proto.GetRecentReq:
		return TGetRecent, true
	case *proto.GetRecentReply:
		return TGetRecentReply, true
	case *proto.ReconstructReq:
		return TReconstruct, true
	case *proto.ReconstructReply:
		return TReconstructReply, true
	case *proto.FinalizeReq:
		return TFinalize, true
	case *proto.FinalizeReply:
		return TFinalizeReply, true
	case *proto.GCOldReq:
		return TGCOld, true
	case *proto.GCRecentReq:
		return TGCRecent, true
	case *proto.GCReply:
		return TGCReply, true
	case *proto.PartialSumReq:
		return TPartialSum, true
	case *proto.PartialSumReply:
		return TPartialSumReply, true
	case *proto.ProbeReq:
		return TProbe, true
	case *proto.ProbeReply:
		return TProbeReply, true
	}
	return 0, false
}

// vecEncoder appends fixed-width fields to the meta buffer (via the
// embedded encoder) and splices payload segments into the segment list
// without copying them. The meta buffer's capacity is checked up front
// and asserted afterwards: a growth-triggering append would silently
// dangle every earlier meta span, so it is an encode error instead.
type vecEncoder struct {
	encoder
	segs      [][]byte
	spanStart int
	payload   int
}

// block encodes a bytes field: the u32 length goes into the meta
// buffer; a non-empty body is spliced in as its own segment, closing
// the current meta span.
func (e *vecEncoder) block(b []byte) {
	e.u32(uint32(len(b)))
	if len(b) == 0 {
		return
	}
	e.segs = append(e.segs, e.buf[e.spanStart:len(e.buf):len(e.buf)], b)
	e.spanStart = len(e.buf)
	e.payload += len(b)
}

// closeSpan flushes the trailing meta span, if any, into the segment list.
func (e *vecEncoder) closeSpan() {
	if len(e.buf) > e.spanStart {
		e.segs = append(e.segs, e.buf[e.spanStart:len(e.buf):len(e.buf)])
		e.spanStart = len(e.buf)
	}
}

func (e *vecEncoder) vecBatchAddReq(m *proto.BatchAddReq) {
	e.u64(m.Stripe)
	e.u32(uint32(m.Slot))
	e.block(m.Delta)
	e.u32(uint32(len(m.Entries)))
	for _, entry := range m.Entries {
		e.u32(uint32(entry.DataSlot))
		e.tid(entry.NTID)
		e.tid(entry.OTID)
	}
	e.u64(m.Epoch)
}

// EncodeFrame encodes msg with its full frame header (length, type,
// request id, deadline budget) into f, drawing meta bytes from meta —
// which must have capacity at least MetaSize(msg) and stays borrowed
// until the caller's writev returns — and referencing payload fields
// in place. f.Segs is reset and reused. See the package comment at the
// top of this file for the ownership rules.
func EncodeFrame(f *Frame, msg any, id uint64, deadlineUS uint32, meta []byte) error {
	need := Size(msg)
	metaNeed := need - PayloadBytes(msg)
	if cap(meta) < metaNeed {
		return fmt.Errorf("wire: meta buffer cap %d short of %d for %T", cap(meta), metaNeed, msg)
	}
	e := vecEncoder{segs: f.Segs[:0]}
	// Reserve the header; it is patched once the switch has settled the
	// type tag. Reslicing (not appending) keeps the base pointer stable.
	e.buf = meta[:0][:FrameOverhead]

	var mt MsgType
	switch m := msg.(type) {
	case *proto.SwapReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.block(m.Value)
		e.tid(m.NTID)
		mt = TSwap
	case *proto.AddReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.block(m.Delta)
		e.u32(uint32(m.DataSlot))
		e.boolean(m.Premultiplied)
		e.tid(m.NTID)
		e.tid(m.OTID)
		e.u64(m.Epoch)
		mt = TAdd
	case *proto.BatchAddReq:
		e.vecBatchAddReq(m)
		mt = TBatchAdd
	case *proto.BatchAddMultiReq:
		e.u32(uint32(len(m.Adds)))
		for _, sub := range m.Adds {
			e.vecBatchAddReq(sub)
		}
		mt = TBatchAddMulti
	case *proto.ReconstructReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.i32s(m.CSet)
		e.block(m.Block)
		e.boolean(m.InPlace)
		mt = TReconstruct
	case *proto.PartialSumReq:
		e.u64(m.Stripe)
		e.u32(uint32(m.Slot))
		e.u8(m.Coef)
		e.block(m.Acc)
		mt = TPartialSum
	case *proto.ReadReply:
		e.boolean(m.OK)
		e.block(m.Block)
		e.u8(uint8(m.LockMode))
		e.tid(m.TID)
		mt = TReadReply
	case *proto.SwapReply:
		e.boolean(m.OK)
		e.block(m.Block)
		e.u64(m.Epoch)
		e.tid(m.OTID)
		e.u8(uint8(m.LockMode))
		mt = TSwapReply
	case *proto.GetStateReply:
		e.u8(uint8(m.OpMode))
		e.u8(uint8(m.LockMode))
		e.u64(m.Epoch)
		e.i32s(m.ReconsSet)
		e.tidTimes(m.OldList)
		e.tidTimes(m.RecentList)
		e.block(m.Block)
		e.boolean(m.BlockValid)
		mt = TGetStateReply
	case *proto.PartialSumReply:
		e.boolean(m.OK)
		e.block(m.Sum)
		e.u8(uint8(m.OpMode))
		e.u8(uint8(m.LockMode))
		mt = TPartialSumReply
	default:
		// No referenced payload: fall back to the contiguous encoder,
		// still into the meta buffer, yielding a single segment.
		var err error
		mt, e.buf, err = EncodeAppend(msg, e.buf)
		if err != nil {
			return err
		}
	}
	if len(e.buf) != metaNeed {
		// A mismatch against Size means either a new field missed one of
		// the two encoders or a growth-triggering append moved the meta
		// backing out from under earlier spans. Refuse the frame rather
		// than send a corrupt one.
		return fmt.Errorf("wire: vectored meta %d bytes, want %d for %T", len(e.buf), metaNeed, msg)
	}
	binary.BigEndian.PutUint32(e.buf[0:4], uint32(need-4))
	e.buf[4] = byte(mt)
	binary.BigEndian.PutUint64(e.buf[5:13], id)
	binary.BigEndian.PutUint32(e.buf[13:17], deadlineUS)
	e.closeSpan()

	f.Type = mt
	f.Segs = e.segs
	f.Payload = e.payload
	f.Wire = need
	return nil
}

package wire

import (
	"reflect"
	"testing"

	"ecstore/internal/proto"
)

// seedMessages returns one representative of every encodable message
// type — the fuzz corpus starts from a valid frame of each, so the
// fuzzer mutates real structure instead of rediscovering it.
func seedMessages() []any {
	tid := proto.TID{Seq: 7, Block: 2, Client: 3}
	tt := []proto.TIDTime{{TID: tid, Time: 99}}
	return []any{
		&proto.ReadReq{Stripe: 1, Slot: 0},
		&proto.ReadReply{OK: true, Block: []byte{1, 2, 3}, LockMode: proto.L1},
		&proto.SwapReq{Stripe: 1, Slot: 0, Value: []byte{4, 5}, NTID: tid},
		&proto.SwapReply{OK: true, Block: []byte{6}, Epoch: 2, OTID: tid, LockMode: proto.Unlocked},
		&proto.AddReq{Stripe: 1, Slot: 3, Delta: []byte{7}, DataSlot: 0, Premultiplied: true, NTID: tid, OTID: tid, Epoch: 1},
		&proto.AddReply{Status: proto.StatusOK, OpMode: proto.Norm, LockMode: proto.Unlocked},
		&proto.BatchAddReq{Stripe: 1, Slot: 3, Delta: []byte{8}, Entries: []proto.BatchEntry{{DataSlot: 0, NTID: tid, OTID: tid}}, Epoch: 1},
		&proto.BatchAddReply{Status: proto.StatusOrder, OpMode: proto.Norm, LockMode: proto.L0, Blockers: []int32{1, 2}},
		&proto.CheckTIDReq{Stripe: 1, Slot: 0, NTID: tid, OTID: tid},
		&proto.CheckTIDReply{Status: proto.StatusGC},
		&proto.TryLockReq{Stripe: 1, Slot: 0, Mode: proto.L1, Caller: 5},
		&proto.TryLockReply{OK: true, OldMode: proto.Unlocked},
		&proto.SetLockReq{Stripe: 1, Slot: 0, Mode: proto.L0, Caller: 5},
		&proto.SetLockReply{},
		&proto.GetStateReq{Stripe: 1, Slot: 0, NoBlock: true},
		&proto.GetStateReply{OpMode: proto.Recons, LockMode: proto.L1, Epoch: 3, ReconsSet: []int32{0, 3}, OldList: tt, RecentList: tt, Block: []byte{9}, BlockValid: true},
		&proto.GetRecentReq{Stripe: 1, Slot: 3, Mode: proto.L1, Caller: 5},
		&proto.GetRecentReply{RecentList: tt},
		&proto.ReconstructReq{Stripe: 1, Slot: 0, CSet: []int32{0, 1, 4}, Block: []byte{10}},
		&proto.ReconstructReply{Epoch: 4},
		&proto.FinalizeReq{Stripe: 1, Slot: 0, Epoch: 5},
		&proto.FinalizeReply{},
		&proto.GCOldReq{Stripe: 1, Slot: 0, TIDs: []proto.TID{tid}},
		&proto.GCRecentReq{Stripe: 1, Slot: 0, TIDs: []proto.TID{tid}},
		&proto.GCReply{Status: proto.StatusOK},
		&proto.ProbeReq{Stripe: 1, Slot: 0},
		&proto.ProbeReply{OpMode: proto.Norm, LockMode: proto.Unlocked, RecentCount: 1, OldestAge: 12, HasRecent: true, Epoch: 6},
		&proto.PartialSumReq{Stripe: 1, Slot: 0, Coef: 0x1d, Acc: []byte{11, 12}},
		&proto.PartialSumReply{OK: true, Sum: []byte{13}, OpMode: proto.Norm, LockMode: proto.L1},
	}
}

// FuzzPartialSumFrame targets the partial-sum frames specifically:
// structured request/reply fields are encoded, decoded, and checked for
// exact round-trip plus the Size contract, and the raw payload is also
// thrown at both decoders directly for malformed-input safety.
func FuzzPartialSumFrame(f *testing.F) {
	f.Add(uint64(1), int32(0), byte(0x1d), []byte{1, 2, 3}, true)
	f.Add(uint64(1)<<40|7, int32(4), byte(0), []byte(nil), false)
	f.Add(uint64(0), int32(-1), byte(255), make([]byte, 64), true)

	f.Fuzz(func(t *testing.T, stripe uint64, slot int32, coef byte, payload []byte, ok bool) {
		for _, msg := range []any{
			&proto.PartialSumReq{Stripe: stripe, Slot: slot, Coef: coef, Acc: payload},
			&proto.PartialSumReply{OK: ok, Sum: payload, OpMode: proto.Norm, LockMode: proto.L1},
		} {
			mt, buf, err := Encode(msg)
			if err != nil {
				t.Fatalf("encode %T: %v", msg, err)
			}
			if Size(msg) != len(buf)+FrameOverhead {
				t.Fatalf("Size(%T) = %d, want %d", msg, Size(msg), len(buf)+FrameOverhead)
			}
			got, err := Decode(mt, buf)
			if err != nil {
				t.Fatalf("decode %T: %v", msg, err)
			}
			if len(payload) == 0 {
				// Empty byte fields round-trip as nil; normalize before
				// comparing.
				switch m := msg.(type) {
				case *proto.PartialSumReq:
					m.Acc = nil
				case *proto.PartialSumReply:
					m.Sum = nil
				}
			}
			if !reflect.DeepEqual(msg, got) {
				t.Fatalf("round-trip mismatch:\n  sent: %#v\n  got:  %#v", msg, got)
			}
		}
		// Malformed-input safety: the raw payload itself must never
		// panic either decoder; truncations of a valid frame must error.
		_, _ = Decode(TPartialSum, payload)
		_, _ = Decode(TPartialSumReply, payload)
		mt, buf, _ := Encode(&proto.PartialSumReq{Stripe: stripe, Slot: slot, Coef: coef, Acc: payload})
		for cut := 0; cut < len(buf); cut++ {
			if _, err := Decode(mt, buf[:cut]); err == nil {
				t.Fatalf("decode of truncated partial-sum frame (%d/%d bytes) succeeded", cut, len(buf))
			}
		}
	})
}

// FuzzDecode feeds arbitrary (type, payload) pairs through the codec:
// Decode must never panic, and anything it accepts must round-trip —
// re-Encode to the same type, re-Decode to an equal message, with Size
// honoring its contract.
func FuzzDecode(f *testing.F) {
	for _, msg := range seedMessages() {
		mt, buf, err := Encode(msg)
		if err != nil {
			f.Fatalf("seed %T: %v", msg, err)
		}
		f.Add(byte(mt), buf)
	}
	f.Add(byte(0), []byte{})
	f.Add(byte(255), []byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, typeRaw byte, buf []byte) {
		msg, err := Decode(MsgType(typeRaw), buf)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		mt2, buf2, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded %T but cannot re-encode: %v", msg, err)
		}
		if mt2 != MsgType(typeRaw) {
			t.Fatalf("type changed across round-trip: %d -> %d", typeRaw, mt2)
		}
		if Size(msg) != len(buf2)+FrameOverhead {
			t.Fatalf("Size(%T) = %d, want %d", msg, Size(msg), len(buf2)+FrameOverhead)
		}
		msg2, err := Decode(mt2, buf2)
		if err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", msg, err)
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("round-trip mismatch:\n  first:  %#v\n  second: %#v", msg, msg2)
		}
	})
}

package wire

import (
	"errors"
	"fmt"

	"ecstore/internal/proto"
)

// ErrCode classifies the error carried in a TError reply. The code
// travels as the payload's first byte so typed sentinels survive the
// wire: a client can errors.Is() against proto.ErrDraining or
// proto.ErrDeadlineExceeded exactly as if the call had been local.
// CodeGeneric covers every other server-side failure, carried as text.
type ErrCode uint8

const (
	// CodeGeneric is an untyped server-side error (message text only).
	CodeGeneric ErrCode = iota
	// CodeDraining maps proto.ErrDraining: the node refuses new work
	// while shutting down gracefully.
	CodeDraining
	// CodeDeadline maps proto.ErrDeadlineExceeded: the call's
	// propagated deadline budget expired and the node shed the work.
	CodeDeadline
	// CodeThrottled maps proto.ErrThrottled: a tenant exceeded its QoS
	// budget and the request was shed before touching storage.
	CodeThrottled
	// CodeOverloaded maps proto.ErrOverloaded: the service shed load to
	// protect itself, independent of the asking tenant.
	CodeOverloaded
)

// errSentinels pairs each typed code with the sentinel it round-trips.
// Extend this table (and the ErrCode constants) together; the
// capability gate in internal/transport checks that every typed proto
// sentinel meant to cross the wire appears here.
var errSentinels = map[ErrCode]error{
	CodeDraining:   proto.ErrDraining,
	CodeDeadline:   proto.ErrDeadlineExceeded,
	CodeThrottled:  proto.ErrThrottled,
	CodeOverloaded: proto.ErrOverloaded,
}

// CodeOf classifies an error for the wire. Unrecognized errors are
// CodeGeneric and travel as text only.
func CodeOf(err error) ErrCode {
	for code, sentinel := range errSentinels {
		if errors.Is(err, sentinel) {
			return code
		}
	}
	return CodeGeneric
}

// SentinelFor returns the proto sentinel a typed code decodes to, or
// nil for CodeGeneric and unknown codes (future peers' codes degrade
// to generic text errors rather than failing to parse).
func SentinelFor(code ErrCode) error {
	return errSentinels[code]
}

// AppendError serializes err as a TError payload: one code byte, then
// the message text.
func AppendError(buf []byte, err error) []byte {
	buf = append(buf, byte(CodeOf(err)))
	return append(buf, err.Error()...)
}

// ParseError splits a TError payload into its code and message text.
// The message is copied, so the payload's backing buffer may be
// recycled immediately.
func ParseError(payload []byte) (ErrCode, string) {
	if len(payload) == 0 {
		return CodeGeneric, ""
	}
	return ErrCode(payload[0]), string(payload[1:])
}

// DecodeError reassembles the error a TError payload carries: typed
// codes come back wrapping their proto sentinel (errors.Is-able),
// generic ones as plain text errors.
func DecodeError(payload []byte) error {
	code, msg := ParseError(payload)
	if sentinel := SentinelFor(code); sentinel != nil {
		return fmt.Errorf("%w: %s", sentinel, msg)
	}
	return errors.New(msg)
}

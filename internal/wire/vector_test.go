package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ecstore/internal/proto"
)

// contiguousFrame builds the reference framing the copying write path
// produces: a 17-byte header followed by the EncodeAppend body.
func contiguousFrame(t testing.TB, msg any, id uint64, deadlineUS uint32) (MsgType, []byte) {
	t.Helper()
	mt, body, err := Encode(msg)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	frame := make([]byte, FrameOverhead, FrameOverhead+len(body))
	binary.BigEndian.PutUint32(frame[0:4], uint32(FrameOverhead-4+len(body)))
	frame[4] = byte(mt)
	binary.BigEndian.PutUint64(frame[5:13], id)
	binary.BigEndian.PutUint32(frame[13:17], deadlineUS)
	return mt, append(frame, body...)
}

// vectorCases is seedMessages plus payload-heavy variants: large
// blocks, empty blocks, and multi-payload frames, so both the span
// splicing and the fallback path are exercised.
func vectorCases() []any {
	tid := proto.TID{Seq: 9, Block: 1, Client: 4}
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte(i * 7)
	}
	cases := seedMessages()
	cases = append(cases,
		&proto.SwapReq{Stripe: 5, Slot: 2, Value: big, NTID: tid},
		&proto.SwapReq{Stripe: 5, Slot: 2, NTID: tid}, // empty payload stays in meta
		&proto.AddReq{Stripe: 5, Slot: 3, Delta: big, DataSlot: 1, NTID: tid, OTID: tid, Epoch: 2},
		&proto.ReadReply{OK: true, Block: big, LockMode: proto.L0},
		&proto.SwapReply{OK: true, Block: big, Epoch: 7, OTID: tid, LockMode: proto.L1},
		&proto.GetStateReply{OpMode: proto.Norm, Epoch: 1, Block: big, BlockValid: true},
		&proto.PartialSumReq{Stripe: 1, Slot: 4, Coef: 0x53, Acc: big},
		&proto.PartialSumReply{OK: true, Sum: big},
		&proto.ReconstructReq{Stripe: 2, Slot: 0, CSet: []int32{0, 2, 3}, Block: big, InPlace: true},
		&proto.BatchAddMultiReq{Adds: []*proto.BatchAddReq{
			{Stripe: 1, Slot: 3, Delta: big, Entries: []proto.BatchEntry{{DataSlot: 0, NTID: tid}}, Epoch: 1},
			{Stripe: 2, Slot: 3, Delta: nil, Epoch: 1},
			{Stripe: 3, Slot: 4, Delta: big[:17], Epoch: 2},
		}},
	)
	return cases
}

func TestEncodeFrameMatchesContiguousFraming(t *testing.T) {
	var f Frame
	for _, msg := range vectorCases() {
		const id, deadlineUS = 0xfeedbeefcafe, 123456
		mt, want := contiguousFrame(t, msg, id, deadlineUS)
		meta := make([]byte, MetaSize(msg))
		if err := EncodeFrame(&f, msg, id, deadlineUS, meta); err != nil {
			t.Fatalf("EncodeFrame %T: %v", msg, err)
		}
		got := bytes.Join(f.Segs, nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("%T: vectored frame differs from contiguous framing\n  vec:  %x\n  want: %x", msg, got, want)
		}
		if f.Type != mt {
			t.Errorf("%T: frame type %d, want %d", msg, f.Type, mt)
		}
		if f.Wire != len(want) || f.Wire != Size(msg) {
			t.Errorf("%T: frame wire size %d, want %d (Size %d)", msg, f.Wire, len(want), Size(msg))
		}
		if f.Payload != PayloadBytes(msg) {
			t.Errorf("%T: frame payload %d, want PayloadBytes %d", msg, f.Payload, PayloadBytes(msg))
		}
		if tt, ok := TypeOf(msg); !ok || tt != mt {
			t.Errorf("TypeOf(%T) = %d,%v, want %d,true", msg, tt, ok, mt)
		}
	}
}

// TestEncodeFramePayloadSegmentsAlias pins the zero-copy property: the
// payload segments are the message's own buffers, not copies.
func TestEncodeFramePayloadSegmentsAlias(t *testing.T) {
	value := make([]byte, 1<<20)
	value[0], value[len(value)-1] = 0xA5, 0x5A
	msg := &proto.SwapReq{Stripe: 1, Slot: 0, Value: value, NTID: proto.TID{Seq: 1, Client: 2}}
	var f Frame
	meta := make([]byte, MetaSize(msg))
	if err := EncodeFrame(&f, msg, 1, 0, meta); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, seg := range f.Segs {
		if len(seg) == len(value) && &seg[0] == &value[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("no segment aliases the 1 MiB payload: the encoder copied it")
	}
	if f.Payload != len(value) {
		t.Fatalf("payload accounting %d, want %d", f.Payload, len(value))
	}
}

func TestEncodeFrameRejectsShortMeta(t *testing.T) {
	msg := &proto.SwapReq{Stripe: 1, Slot: 0, Value: make([]byte, 64), NTID: proto.TID{Seq: 1}}
	var f Frame
	if err := EncodeFrame(&f, msg, 1, 0, make([]byte, MetaSize(msg)-1)); err == nil {
		t.Fatal("EncodeFrame accepted an undersized meta buffer")
	}
	if err := EncodeFrame(&f, struct{ x int }{}, 1, 0, make([]byte, 64)); err == nil {
		t.Fatal("EncodeFrame accepted an unknown message type")
	}
}

// TestEncodeFrameZeroAlloc holds the steady-state contract the RPC
// write path depends on: with the Frame and meta buffer reused, a
// 1 MiB payload frame encodes with zero allocations.
func TestEncodeFrameZeroAlloc(t *testing.T) {
	var msg any = &proto.SwapReq{Stripe: 1, Slot: 0, Value: make([]byte, 1<<20), NTID: proto.TID{Seq: 1, Client: 3}}
	var f Frame
	meta := make([]byte, MetaSize(msg))
	if err := EncodeFrame(&f, msg, 1, 0, meta); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := EncodeFrame(&f, msg, 42, 7, meta); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeFrame allocates %.1f/op in steady state, want 0", allocs)
	}
}

// TestTypeOfCoversEveryMessage keeps the pre-encode type lookup in
// lockstep with the codec: every encodable message must resolve.
func TestTypeOfCoversEveryMessage(t *testing.T) {
	for _, msg := range seedMessages() {
		mt, buf, err := Encode(msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		_ = buf
		got, ok := TypeOf(msg)
		if !ok || got != mt {
			t.Errorf("TypeOf(%T) = %d,%v, want %d,true", msg, got, ok, mt)
		}
	}
	if _, ok := TypeOf(42); ok {
		t.Error("TypeOf accepted a non-message")
	}
}

// Bulk-I/O benchmarks behind BENCH_bulkio.json: the same 64-stripe
// sequential WriteAt/ReadAt span driven through the pipelined engine
// at window sizes 1 (the strictly sequential path), 4, and 16.
//
// The cluster is fully in-process, with every shard handle wrapped in
// transport.Delayed: a fixed 100 us round trip per RPC and nothing
// else. That is the quantity pipelining exists to hide — concurrent
// RPCs overlap their round trips exactly as they would on a wire,
// while the sequential path pays them end to end — and it is what
// keeps the window-16/window-1 ratio reproducible on a single-core CI
// runner, where raw direct-call benchmarks would only measure the
// (already window-independent) CPU cost of the GF math. Run with
//
//	go test -run '^$' -bench 'BenchmarkBulk' -benchtime 2s
//
// to regenerate the MB/s table in README.md; scripts/benchcheck gates
// these against BENCH_bulkio.json's ci_baseline.
package ecstore_test

import (
	"context"
	"testing"
	"time"

	"ecstore/internal/placement"
	"ecstore/internal/proto"
	"ecstore/internal/transport"
	"ecstore/internal/volume"
)

const (
	bulkBenchBlock   = 4096
	bulkBenchStripes = 64 // per span; k=2 => 128 blocks, 512 KiB
	bulkBenchRTT     = 100 * time.Microsecond
)

// benchBulkVolume builds an in-process sharded volume (two groups over
// a six-site pool) whose shard handles each charge one simulated round
// trip per RPC, with the bulk engine at the given window.
func benchBulkVolume(b *testing.B, window int) *volume.Local {
	b.Helper()
	v, err := volume.NewLocal(volume.LocalOptions{
		K: 2, N: 4, BlockSize: bulkBenchBlock,
		Groups: 2, Sites: 6, BlocksPerGroup: 128,
		MaxInFlight: window,
		WrapShard: func(site placement.Node, group uint64, n proto.StorageNode) proto.StorageNode {
			return transport.NewDelayed(n, bulkBenchRTT)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = v.Close() })
	return v
}

func benchBulkWriteAt(b *testing.B, window int) {
	v := benchBulkVolume(b, window)
	ctx := context.Background()
	payload := make([]byte, bulkBenchStripes*2*bulkBenchBlock)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := v.WriteAt(ctx, payload, 0); err != nil || n != len(payload) {
			b.Fatalf("WriteAt = %d, %v", n, err)
		}
	}
	b.StopTimer()
	if err := v.CollectGarbage(ctx); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBulkWriteAtW1(b *testing.B)  { benchBulkWriteAt(b, 1) }
func BenchmarkBulkWriteAtW4(b *testing.B)  { benchBulkWriteAt(b, 4) }
func BenchmarkBulkWriteAtW16(b *testing.B) { benchBulkWriteAt(b, 16) }

func benchBulkReadAt(b *testing.B, window int) {
	v := benchBulkVolume(b, window)
	ctx := context.Background()
	payload := make([]byte, bulkBenchStripes*2*bulkBenchBlock)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := v.WriteAt(ctx, payload, 0); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, len(payload))
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := v.ReadAt(ctx, buf, 0); err != nil || n != len(buf) {
			b.Fatalf("ReadAt = %d, %v", n, err)
		}
	}
}

func BenchmarkBulkReadAtW1(b *testing.B)  { benchBulkReadAt(b, 1) }
func BenchmarkBulkReadAtW16(b *testing.B) { benchBulkReadAt(b, 16) }
